"""Distributed backend: shards answered by remote node servers over TCP.

:class:`DistributedBackend` is the coordinator side of a master/node split
(the shape of clusterz's ``DistributedKZCenter`` driving one
``DistQueryOracle`` per machine): it subclasses
:class:`~repro.neighbors.sharded.ShardedBackend` and keeps *everything*
above the transport — the plan compiler, the selection/view wire specs,
the deterministic shard-order merge folds, the bounded heaviest-cell
merge — swapping only the dispatch layer: instead of submitting
``(method, shard, args)`` tasks to local worker processes, it groups them
by owning node (``shard % num_nodes``) and ships each node's batch as one
``shard_tasks`` RPC over a pipelined socket (the
:mod:`repro.neighbors.rpc` framing).  Each node hosts a node-local
``ShardedBackend`` over the *same* dataset with the *same* global shard
bounds, so a task for shard ``s`` computes bitwise the same partial no
matter which machine answers it — and because partials are folded in
shard order by the shared ``_merge_*`` code, every released value is
bitwise identical whether shards live in threads, processes, or sockets
(the loopback parity suite pins exactly this across 1/2/3-node
topologies).

Dataset placement: ``init`` ships the full ``(n, d)`` array to every node
once, at construction.  That is deliberate — the truncated statistic and
the streaming histograms query *all* points against one shard's slice, so
the node needs the full dataset anyway; what is sharded is the expensive
state (per-shard indexes, cached view images, memoised selections) and
the work.  Nodes only ever receive tasks for the shards assigned to them,
so with ``W`` workers per node each machine builds indexes for its
``num_shards / num_nodes`` shards and nothing else.

Failure semantics: a node death, a dropped connection, or a per-call
timeout raises :class:`~repro.neighbors.base.BackendUnavailableError` and
poisons the affected connection — subsequent calls fail fast instead of
hanging, and **no partial merge is ever returned** (a release computed
from a subset of shards would be silently wrong; contrast the local
pool's silent serial fallback, which can recompute everything from the
parent's own copy of the points).
"""

from __future__ import annotations

from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels as _kernels
from repro.neighbors.base import (
    BackendUnavailableError,
    PlanFuture,
    QueryPlan,
)
from repro.neighbors.rpc import NodeClient, parse_node_address
from repro.neighbors.sharded import (
    SHARD_TASK_METHODS,
    ShardedBackend,
    _CompiledPlan,
)

__all__ = ["DistributedBackend"]


class _DistributedPlanFuture(PlanFuture):
    """An in-flight plan: one pipelined ``shard_tasks`` RPC per node.

    ``submit`` already wrote every node's batch to its socket, so the plan
    is genuinely in flight node-side; :meth:`result` drains the replies,
    reassembles the per-shard partials **in shard order**, and folds them
    through the shared merge code.  Any node failure surfaces as
    :class:`BackendUnavailableError` before any merging happens — there is
    no partial result to leak.
    """

    def __init__(self, backend: "DistributedBackend", compiled: _CompiledPlan,
                 node_batches: list) -> None:
        self._backend = backend
        self._compiled = compiled
        #: ``[(node, [shard, ...], PendingReply), ...]``
        self._node_batches = node_batches
        self._resolved: Optional[list] = None

    def done(self) -> bool:
        """Whether every node's reply has arrived (merging still happens on
        the first :meth:`result` call)."""
        return (self._resolved is not None
                or all(pending.done()
                       for _, _, pending in self._node_batches))

    def result(self) -> list:
        """Block for the node replies, merge in shard order, and return the
        per-query results (memoised across calls)."""
        if self._resolved is None:
            backend = self._backend
            shard_parts: List[Optional[list]] = [None] * backend.num_shards
            for node, shards, pending in self._node_batches:
                value = backend._node_value(node, pending.wait())
                if len(value) != len(shards):
                    raise BackendUnavailableError(
                        f"node {backend.node_addresses[node]} returned "
                        f"{len(value)} results for {len(shards)} tasks"
                    )
                for shard, part in zip(shards, value):
                    shard_parts[shard] = part
            self._resolved = backend._merge_plan(self._compiled, shard_parts)
            self._node_batches = []
        return self._resolved


class DistributedBackend(ShardedBackend):
    """Shards answered by remote node servers; merges exactly, like local.

    Parameters
    ----------
    points:
        ``(n, d)`` dataset.  Shipped to every node once at construction
        (see the module docstring for why full replication is the right
        trade here).
    nodes:
        The node servers, as ``"host:port"`` strings or ``(host, port)``
        pairs — one ``python -m repro.neighbors.serve`` per entry.
    num_shards:
        Global shard count, identical on every node.  Defaults to
        ``num_nodes * max(1, node_workers)`` so each node's worker slots
        all receive work.
    node_workers:
        Worker processes each node's local pool starts (``0`` = the node
        answers serially in its connection thread; a ``--workers`` flag on
        the server overrides this).  Default 0.
    inner_backend:
        Per-shard strategy, as for :class:`ShardedBackend`.
    timeout:
        Per-call read timeout in seconds (``None`` = wait forever).  When
        a node exceeds it, the call raises
        :class:`BackendUnavailableError` and the connection is poisoned.
    connect_timeout:
        Socket connect timeout for the initial dial.
    """

    name = "distributed"

    #: Plans are pipelined onto every node's socket at submit time, so
    #: speculative plans genuinely overlap the coordinator's other work.
    supports_speculation: ClassVar[bool] = True

    def __init__(self, points, nodes: Sequence, num_shards: Optional[int] = None,
                 node_workers: int = 0, inner_backend: str = "auto",
                 timeout: Optional[float] = None,
                 connect_timeout: Optional[float] = 10.0) -> None:
        addresses = [parse_node_address(node) for node in nodes]
        if not addresses:
            raise ValueError("DistributedBackend requires at least one node")
        if num_shards is None:
            num_shards = len(addresses) * max(1, int(node_workers))
        # num_workers=0: the coordinator never starts a local pool — the
        # serial _ShardSet stays as the plan compiler's validation context
        # only, every actual task goes over the wire.
        super().__init__(points, num_shards=num_shards, num_workers=0,
                         inner_backend=inner_backend)
        self._timeout = timeout
        self._clients: List[NodeClient] = []
        try:
            for host, port in addresses:
                self._clients.append(
                    NodeClient(host, port, connect_timeout=connect_timeout,
                               timeout=timeout)
                )
            init = ("init", self._points, self.num_shards,
                    int(node_workers), self._inner_backend)
            # Pipelined: every node deserialises the dataset and builds its
            # backend concurrently, then the replies are drained in order.
            pendings = [client.send(init) for client in self._clients]
            for node, pending in enumerate(pendings):
                value = self._node_value(node, pending.wait())
                if int(value["num_shards"]) != self.num_shards:
                    raise BackendUnavailableError(
                        f"node {self.node_addresses[node]} built "
                        f"{value['num_shards']} shards, expected "
                        f"{self.num_shards}"
                    )
        except BaseException:
            for client in self._clients:
                client.close()
            raise

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """How many node servers answer for this backend."""
        return len(self._clients)

    @property
    def node_addresses(self) -> List[str]:
        """The ``host:port`` of every node, in shard-assignment order."""
        return [f"{client.address[0]}:{client.address[1]}"
                for client in self._clients]

    @property
    def parallel(self) -> bool:
        """Remote dispatch is always 'parallel' in the sense that matters
        here: tasks leave the coordinator process."""
        return True

    def _node_for(self, shard: int) -> int:
        """The node owning ``shard`` (fixed assignment, like the local
        shard→worker-slot affinity: each shard's index and caches are built
        on exactly one machine)."""
        return shard % len(self._clients)

    def _node_value(self, node: int, reply) -> object:
        """Unwrap one node reply, translating error replies."""
        if not isinstance(reply, dict) or "status" not in reply:
            raise BackendUnavailableError(
                f"node {self.node_addresses[node]} sent a malformed reply"
            )
        if reply["status"] != "ok":
            raise RuntimeError(
                f"node {self.node_addresses[node]} failed: "
                f"{reply.get('error')}\n{reply.get('traceback', '')}"
            )
        return reply["value"]

    # ------------------------------------------------------------------ #
    # Transport (replaces the local pool dispatch wholesale)
    # ------------------------------------------------------------------ #
    def _group_tasks(self, tasks: Sequence[tuple]) -> List[Tuple[int, list]]:
        """Group task indices by owning node, nodes in ascending order."""
        grouped: dict = {}
        for index, (_, shard, _) in enumerate(tasks):
            grouped.setdefault(self._node_for(shard), []).append(index)
        return sorted(grouped.items())

    def _dispatch_tasks(self, tasks: Sequence[tuple]) -> list:
        """One ``shard_tasks`` RPC per involved node; results in task
        order.  Requests are written to every node before any reply is
        read, so the nodes compute concurrently."""
        batches = []
        for node, indices in self._group_tasks(tasks):
            payload = ("shard_tasks", [tasks[index] for index in indices])
            batches.append((node, indices,
                            self._clients[node].send(payload)))
        results: list = [None] * len(tasks)
        for node, indices, pending in batches:
            value = self._node_value(node, pending.wait())
            if len(value) != len(indices):
                raise BackendUnavailableError(
                    f"node {self.node_addresses[node]} returned "
                    f"{len(value)} results for {len(indices)} tasks"
                )
            for index, result in zip(indices, value):
                results[index] = result
        return results

    def run_shard_tasks(self, tasks: Sequence[tuple]) -> list:
        """Run a batch of ``(method, shard, args)`` sub-queries on the
        owning nodes (the remote twin of
        :meth:`ShardedBackend.run_shard_tasks`)."""
        tasks = [(str(method), int(shard), tuple(args))
                 for method, shard, args in tasks]
        for method, shard, _ in tasks:
            if method not in SHARD_TASK_METHODS:
                raise ValueError(f"unknown shard task method {method!r}")
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"shard {shard} out of range [0, {self.num_shards})"
                )
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += len(tasks)
        return self._dispatch_tasks(tasks)

    def _iter_shards(self, method: str, args: tuple, wave: int = None):
        """Yield per-shard results in shard order, one wave of shards in
        flight at a time (the wave bounds how many undrained results sit in
        coordinator memory, exactly like the local pool's version)."""
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        if wave is None:
            wave = len(self._clients)
        wave = max(len(self._clients), min(int(wave), self.num_shards))
        for start in range(0, self.num_shards, wave):
            shards = range(start, min(start + wave, self.num_shards))
            batch = self._dispatch_tasks(
                [(method, shard, args) for shard in shards]
            )
            for result in batch:
                yield result

    def submit(self, plan: QueryPlan) -> PlanFuture:
        """Dispatch a plan without waiting: the compiled bundle is written
        to every node's socket immediately (the PR 5 wire form *is* the RPC
        payload), and the returned future merges the per-shard partials in
        shard order on first :meth:`~PlanFuture.result`."""
        compiled = self._compile_plan(plan)
        self._stats["plans"] += 1
        if not compiled.bundle:
            # Coordinator-only plan: nothing to fan out.
            return PlanFuture(self._merge_plan(compiled, []))
        self._stats["fanouts"] += 1
        self._stats["shard_tasks"] += self.num_shards
        tasks = [("execute_plan", shard, compiled.shard_args(shard))
                 for shard in range(self.num_shards)]
        node_batches = []
        for node, indices in self._group_tasks(tasks):
            payload = ("shard_tasks", [tasks[index] for index in indices])
            node_batches.append((node, [tasks[index][1] for index in indices],
                                 self._clients[node].send(payload)))
        return _DistributedPlanFuture(self, compiled, node_batches)

    # ------------------------------------------------------------------ #
    # Diagnostics / lifecycle
    # ------------------------------------------------------------------ #
    def pool_stats(self) -> dict:
        """Coordinator counters plus every node's own ``pool_stats()``.

        ``nodes`` holds one entry per node (``None`` for a node that is
        unreachable — diagnostics deliberately do not raise), ``workers``
        flattens the per-node worker cache stats, and ``stolen_tasks``
        aggregates the coordinator's count with every reachable node's.
        """
        stats = dict(self._stats)
        stats["num_shards"] = self.num_shards
        stats["requested_workers"] = self._requested_workers
        stats["num_nodes"] = self.num_nodes
        stats["kernel_mode"] = _kernels.KERNEL_MODE
        stats["speculation"] = self.speculation_stats()
        node_stats: List[Optional[dict]] = []
        for node, client in enumerate(self._clients):
            if not client.alive:
                node_stats.append(None)
                continue
            try:
                node_stats.append(
                    self._node_value(node, client.call(("pool_stats",)))
                )
            except BackendUnavailableError:
                node_stats.append(None)
        stats["nodes"] = node_stats
        stats["stolen_tasks"] += sum(
            int(entry.get("stolen_tasks", 0))
            for entry in node_stats if entry
        )
        stats["workers"] = [
            worker for entry in node_stats if entry
            for worker in entry.get("workers", [])
        ]
        stats["parallel"] = any(
            entry.get("parallel") for entry in node_stats if entry
        )
        return stats

    def close(self) -> None:
        """Release every node's backend and close the connections.

        Terminal, unlike the local pool's close: the coordinator cannot
        restart servers it does not own, so queries after ``close`` raise
        :class:`BackendUnavailableError`.
        """
        for client in getattr(self, "_clients", []):
            if client.alive:
                try:
                    client.call(("close_backend",), timeout=5.0)
                except (BackendUnavailableError, RuntimeError, OSError):
                    pass
            client.close()
        super().close()
