"""Exact blocked squared-distance computation.

Every backend measures proximity in *squared* Euclidean space: a point is
within radius ``r`` iff ``sum((x - y)^2) <= r*r``.  Two reasons:

* **Cross-backend parity.**  scipy's ``cKDTree`` compares squared distances
  against ``r^2`` internally, so any backend comparing ``sqrt(d2) <= r`` can
  disagree with the tree at radii within one ulp of an actual pairwise
  distance (e.g. ``r = sqrt(3)`` for points at the corners of a unit cube).
  Working in squared space everywhere makes counts identical by construction.
* **Accuracy.**  The squared sum is computed by direct differencing, which is
  exact to the last ulp — unlike the Gram-matrix shortcut of
  :func:`repro.geometry.balls.pairwise_distances`, whose catastrophic
  cancellation puts duplicate points at distance ~1e-8 instead of 0 (breaking
  counts at radius 0).  It also skips ``n^2`` square roots.
"""

from __future__ import annotations

import numpy as np

from repro import kernels as _kernels

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - scipy-less environments
    _cdist = None

#: Default cap, in bytes, on the scratch memory a blocked pass may hold.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024


def squared_radius_keys(radii: np.ndarray) -> np.ndarray:
    """Map radii to squared-space search keys; negative radii match nothing.

    The single definition of the "negative radius means an empty ball"
    convention (the paper's ``B_r = 0`` for ``r < 0``): every count/score
    path compares exact squared distances (all ``>= 0``) against these keys,
    so sharing the mapping is part of the cross-backend parity contract.
    """
    radii = np.asarray(radii, dtype=float)
    return np.where(radii < 0, -1.0, radii * radii)


def squared_distance_block(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Exact ``(q, n)`` squared Euclidean distances, by direct differencing.

    Dispatches to the active kernel set (:mod:`repro.kernels`): scipy
    ``cdist`` / einsum in python mode, the numba slab — bitwise identical
    by its fixed left-to-right accumulation order — in native mode.
    """
    return _kernels.squared_distance_slab(queries, data)


def squared_distance_gather(queries: np.ndarray,
                            neighbors: np.ndarray) -> np.ndarray:
    """Squared distances from each query to its own gathered candidate set.

    ``neighbors`` is ``(q, k, d)``: row ``i`` holds ``k`` candidate points
    for query ``i`` (e.g. KD-tree nearest-neighbour results).  Returns the
    ``(q, k)`` squared distances **bitwise identical** to the corresponding
    entries of :func:`squared_distance_block` — which matters because scipy's
    ``cdist`` and numpy's einsum round the per-pair sum differently in the
    last ulp, and mixing the two kernels across backends would break the
    exact-parity contract (the tree backend's truncated statistic would
    disagree with dense/chunked on generic float data).  On the scipy path
    the pairs are translated to the origin — ``||x - y||^2`` equals
    ``||(y - x) - 0||^2`` term for term, the inner subtraction being the same
    single rounding — and pushed through the same ``cdist`` kernel in one
    call; the scipy-less path shares the einsum formula with the blocked
    fallback.
    """
    queries = np.asarray(queries, dtype=float)
    neighbors = np.asarray(neighbors, dtype=float)
    return _kernels.squared_distance_gather(queries, neighbors)


def row_block_size(num_points: int, dimension: int,
                   memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET) -> int:
    """How many query rows a blocked distance pass may process at once.

    Sized so one block's scratch (the ``(block, n)`` distance slab, or the
    ``(block, n, d)`` difference tensor on the scipy-less path) stays within
    the memory budget; clamped to ``[16, 4096]`` so tiny budgets still make
    progress and huge ones do not defeat the cache.
    """
    per_row_elements = num_points * (dimension + 2 if _cdist is None else 2)
    block = memory_budget_bytes // max(1, 8 * per_row_elements)
    return int(min(4096, max(16, block)))


def blocked_radius_counts(queries: np.ndarray, data: np.ndarray,
                          radius: float, block_size: int) -> np.ndarray:
    """How many of ``data`` lie within ``radius`` of each query, blockwise."""
    counts = np.empty(queries.shape[0], dtype=np.int64)
    threshold = radius * radius
    for start in range(0, queries.shape[0], block_size):
        squared = squared_distance_block(queries[start:start + block_size], data)
        counts[start:start + block_size] = np.count_nonzero(
            squared <= threshold, axis=1
        )
    return counts


def blocked_radius_counts_many(queries: np.ndarray, data: np.ndarray,
                               radii: np.ndarray,
                               block_size: int) -> np.ndarray:
    """Counts of ``data`` within each of several ``radii`` of every query.

    The fused form of :func:`blocked_radius_counts`: each ``(block, n)``
    distance slab is computed once and compared against every squared radius,
    so ``m`` radii cost one distance pass instead of ``m``.

    Parameters
    ----------
    queries:
        ``(q, d)`` query centres.
    data:
        ``(n, d)`` dataset.
    radii:
        ``(m,)`` radii; negative entries yield all-zero counts.
    block_size:
        How many query rows each blocked pass processes.

    Returns
    -------
    numpy.ndarray
        ``(m, q)`` ``int64`` counts; row ``j`` holds the counts at
        ``radii[j]``.
    """
    radii = np.atleast_1d(np.asarray(radii, dtype=float))
    keys = squared_radius_keys(radii)
    counts = np.empty((keys.shape[0], queries.shape[0]), dtype=np.int64)
    for start in range(0, queries.shape[0], block_size):
        squared = squared_distance_block(queries[start:start + block_size], data)
        for slot, key in enumerate(keys):
            counts[slot, start:start + squared.shape[0]] = np.count_nonzero(
                squared <= key, axis=1
            )
    return counts


def truncated_squared_bruteforce(points: np.ndarray, k: int,
                                 block_size: int) -> np.ndarray:
    """Each point's ``k`` smallest squared distances to the dataset, row-sorted.

    One blocked pass over the rows of the (never materialised) distance
    matrix: ``O(n * block)`` scratch, ``(n, k)`` output.  Row ``i`` always
    starts with the self-distance 0.
    """
    return truncated_squared_cross(points, points, k, block_size)


def truncated_squared_cross(queries: np.ndarray, data: np.ndarray, k: int,
                            block_size: int) -> np.ndarray:
    """Each query's ``k`` smallest squared distances to ``data``, row-sorted.

    The cross-set generalisation of :func:`truncated_squared_bruteforce`
    (which is the ``queries is data`` case): the sharded backend uses it to
    compute every dataset point's nearest neighbours *within one shard*, whose
    per-shard results are then merged into the global statistic.

    Parameters
    ----------
    queries:
        ``(q, d)`` query points.
    data:
        ``(n, d)`` dataset the distances are measured against.
    k:
        How many smallest squared distances to keep per query (capped at
        ``n``).
    block_size:
        How many query rows each blocked pass processes.

    Returns
    -------
    numpy.ndarray
        ``(q, min(k, n))`` row-sorted squared distances.
    """
    n = data.shape[0]
    k = min(k, n)
    out = np.empty((queries.shape[0], k), dtype=float)
    for start in range(0, queries.shape[0], block_size):
        squared = squared_distance_block(queries[start:start + block_size], data)
        if k < n:
            squared = np.partition(squared, k - 1, axis=1)[:, :k]
        squared.sort(axis=1)
        out[start:start + block_size] = squared[:, :k]
    return out


def capped_count_histograms(queries: np.ndarray, data: np.ndarray,
                            keys: np.ndarray, cap: int,
                            block_size: int) -> np.ndarray:
    """Histogram of capped counts ``min(|{y : d2(q, y) <= key}|, cap)``.

    The streaming primitive behind the large-target ``L(r, S)`` walk: for
    every squared-radius search key it histograms, over the query points, the
    capped number of dataset points within that key — without ever persisting
    a per-point truncated-distance statistic.  Memory is ``O(block * n)`` for
    the distance slab plus ``O(len(keys) * cap)`` for the histograms; callers
    chunk the keys to bound the latter.

    Parameters
    ----------
    queries:
        ``(q, d)`` query points (a row range of the dataset, for the score).
    data:
        ``(n, d)`` dataset the counts are measured against.
    keys:
        ``(m,)`` squared-radius search keys (negative keys match nothing);
        need not be sorted — each key's histogram is independent.
    cap:
        The count cap ``t``.
    block_size:
        How many query rows each blocked pass processes.

    Returns
    -------
    numpy.ndarray
        ``(m, cap + 1)`` ``int64``: entry ``[j, v]`` is how many queries have
        capped count exactly ``v`` at ``keys[j]``.
    """
    keys = np.asarray(keys, dtype=float)
    histograms = np.zeros((keys.shape[0], cap + 1), dtype=np.int64)
    slots = np.arange(keys.shape[0])
    for start in range(0, queries.shape[0], block_size):
        squared = squared_distance_block(queries[start:start + block_size], data)
        squared.sort(axis=1)
        for row in squared:
            # One binary search per (row, key); rows are sorted, so the count
            # of entries <= key is the right-insertion position of the key.
            row_counts = np.searchsorted(row, keys, side="right")
            np.minimum(row_counts, cap, out=row_counts)
            histograms[slots, row_counts] += 1
    return histograms


__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "blocked_radius_counts",
    "blocked_radius_counts_many",
    "capped_count_histograms",
    "squared_distance_block",
    "squared_radius_keys",
    "row_block_size",
    "truncated_squared_bruteforce",
    "truncated_squared_cross",
]
