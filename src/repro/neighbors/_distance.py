"""Exact blocked squared-distance computation.

Every backend measures proximity in *squared* Euclidean space: a point is
within radius ``r`` iff ``sum((x - y)^2) <= r*r``.  Two reasons:

* **Cross-backend parity.**  scipy's ``cKDTree`` compares squared distances
  against ``r^2`` internally, so any backend comparing ``sqrt(d2) <= r`` can
  disagree with the tree at radii within one ulp of an actual pairwise
  distance (e.g. ``r = sqrt(3)`` for points at the corners of a unit cube).
  Working in squared space everywhere makes counts identical by construction.
* **Accuracy.**  The squared sum is computed by direct differencing, which is
  exact to the last ulp — unlike the Gram-matrix shortcut of
  :func:`repro.geometry.balls.pairwise_distances`, whose catastrophic
  cancellation puts duplicate points at distance ~1e-8 instead of 0 (breaking
  counts at radius 0).  It also skips ``n^2`` square roots.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised implicitly on scipy installs
    from scipy.spatial.distance import cdist as _cdist
except ImportError:  # pragma: no cover - scipy-less environments
    _cdist = None

#: Default cap, in bytes, on the scratch memory a blocked pass may hold.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024


def squared_distance_block(queries: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Exact ``(q, n)`` squared Euclidean distances, by direct differencing."""
    if _cdist is not None:
        return _cdist(queries, data, metric="sqeuclidean")
    difference = queries[:, None, :] - data[None, :, :]
    return np.einsum("qnd,qnd->qn", difference, difference)


def row_block_size(num_points: int, dimension: int,
                   memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET) -> int:
    """How many query rows a blocked distance pass may process at once.

    Sized so one block's scratch (the ``(block, n)`` distance slab, or the
    ``(block, n, d)`` difference tensor on the scipy-less path) stays within
    the memory budget; clamped to ``[16, 4096]`` so tiny budgets still make
    progress and huge ones do not defeat the cache.
    """
    per_row_elements = num_points * (dimension + 2 if _cdist is None else 2)
    block = memory_budget_bytes // max(1, 8 * per_row_elements)
    return int(min(4096, max(16, block)))


def blocked_radius_counts(queries: np.ndarray, data: np.ndarray,
                          radius: float, block_size: int) -> np.ndarray:
    """How many of ``data`` lie within ``radius`` of each query, blockwise."""
    counts = np.empty(queries.shape[0], dtype=np.int64)
    threshold = radius * radius
    for start in range(0, queries.shape[0], block_size):
        squared = squared_distance_block(queries[start:start + block_size], data)
        counts[start:start + block_size] = np.count_nonzero(
            squared <= threshold, axis=1
        )
    return counts


def truncated_squared_bruteforce(points: np.ndarray, k: int,
                                 block_size: int) -> np.ndarray:
    """Each point's ``k`` smallest squared distances to the dataset, row-sorted.

    One blocked pass over the rows of the (never materialised) distance
    matrix: ``O(n * block)`` scratch, ``(n, k)`` output.  Row ``i`` always
    starts with the self-distance 0.
    """
    n = points.shape[0]
    out = np.empty((n, k), dtype=float)
    for start in range(0, n, block_size):
        squared = squared_distance_block(points[start:start + block_size], points)
        if k < n:
            squared = np.partition(squared, k - 1, axis=1)[:, :k]
        squared.sort(axis=1)
        out[start:start + block_size] = squared[:, :k]
    return out


__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "blocked_radius_counts",
    "squared_distance_block",
    "row_block_size",
    "truncated_squared_bruteforce",
]
