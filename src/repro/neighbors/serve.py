"""Node server for the distributed neighbor backend.

Run one of these per machine::

    python -m repro.neighbors.serve --host 0.0.0.0 --port 7400 --workers 4

and point a :class:`~repro.neighbors.distributed.DistributedBackend` at the
resulting ``host:port`` addresses.  The server prints one line —
``LISTENING <host> <port>`` — once the socket is bound (with ``--port 0``
the kernel picks a free port, so the line is how a parent process learns
it), then serves until interrupted.

Protocol
--------
Each accepted connection is served serially by its own thread and owns its
own state: an ``init`` request ships the dataset and topology and builds a
node-local :class:`~repro.neighbors.sharded.ShardedBackend` (so the node
runs the *identical* shard/merge code the single-machine pool runs);
``shard_tasks`` forwards a batch of ``(method, shard, args)`` sub-queries
to that backend's :meth:`~repro.neighbors.sharded.ShardedBackend.run_shard_tasks`
— method names validated against the
:data:`~repro.neighbors.sharded.SHARD_TASK_METHODS` allowlist, batch run
through the node's worker pool with work stealing — and returns the
results in task order.  Messages use the tagged binary encoding of
:mod:`repro.neighbors.rpc` (never pickle: a node must not grant arbitrary
code execution to whatever reaches its port).

Requests are ``(op, *args)`` tuples; replies are ``{"status": "ok",
"value": ...}`` or ``{"status": "error", "error": ..., "traceback": ...}``
dicts.  Worker-side exceptions travel back as error replies — the
connection survives; only transport failures kill it.

The ``debug_*`` ops exist for the fault-injection test suite: they make a
node misbehave on request (stall before replying, drop the connection
without a reply, or send a deliberately truncated frame) so the
coordinator's failure handling — clean :class:`BackendUnavailableError`,
no hang, no partial merge — can be pinned against a real socket.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import socket
import struct
import threading
import time
import traceback
from typing import List, Optional

import numpy as np

from repro.neighbors.rpc import (
    BackendUnavailableError,
    encode,
    recv_message,
    send_message,
    write_frame,
)
from repro.neighbors.sharded import ShardedBackend

__all__ = ["NodeServer", "main"]


def _init_fingerprint(request: tuple) -> tuple:
    """A comparable summary of one ``init`` request: topology plus the
    dataset's exact bytes (cheap next to deserialising the dataset, which
    already happened).  Two requests with equal fingerprints would build
    byte-identical backends, so the second build can be skipped."""
    _, points, num_shards, num_workers, inner_backend = request
    points = np.asarray(points)
    digest = hashlib.sha256(np.ascontiguousarray(points)).hexdigest()
    return (int(num_shards),
            None if num_workers is None else int(num_workers),
            str(inner_backend), points.dtype.str, points.shape, digest)


class NodeServer:
    """A TCP node server hosting per-connection ``ShardedBackend`` pools.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` (default) lets the kernel pick; the bound
        port is then available as :attr:`port`.
    num_workers:
        When not ``None``, overrides the worker count every ``init``
        request asks for — the operator of the node machine knows its core
        budget better than the coordinator does.
    inner_backend:
        When not ``None``, likewise overrides the per-shard strategy.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 num_workers: Optional[int] = None,
                 inner_backend: Optional[str] = None) -> None:
        self._override_workers = num_workers
        self._override_inner = inner_backend
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._connections: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The ``host:port`` string a coordinator connects to."""
        return f"{self.host}:{self.port}"

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> "NodeServer":
        """Serve in a background thread (the in-process/test mode)."""
        self._accept_thread = threading.Thread(target=self.serve_forever,
                                               daemon=True,
                                               name="repro-node-accept")
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept connections until :meth:`stop` (or the listener dies)."""
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="repro-node-conn")
            with self._lock:
                self._connections.append(conn)
                self._threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Close the listener and every live connection (idempotent)."""
        self._stopping.set()
        # shutdown() before close(): merely closing a listening socket does
        # not wake a thread blocked in accept() (it would sit there until
        # the next — never-coming — connection attempt).
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            connections, self._connections = self._connections, []
            threads, self._threads = self._threads, []
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "NodeServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- per-connection protocol ---------------------------------------- #
    def _serve_connection(self, conn: socket.socket) -> None:
        backend: Optional[ShardedBackend] = None
        init_fingerprint: Optional[tuple] = None
        try:
            while not self._stopping.is_set():
                try:
                    request = recv_message(conn)
                except BackendUnavailableError:
                    break  # peer closed (or stop() shut the socket down)
                op = request[0] if isinstance(request, tuple) and request \
                    else None
                # Fault-injection ops manipulate the socket itself, so they
                # are handled before the normal reply path.
                if op == "debug_sleep":
                    time.sleep(float(request[1]))
                    send_message(conn, {"status": "ok", "value": None})
                    continue
                if op == "debug_drop":
                    break  # close without replying: EOF mid-read
                if op == "debug_truncate":
                    # A frame header promising more bytes than will ever
                    # arrive: the peer's read sees EOF mid-frame.
                    payload = encode({"status": "ok", "value": None})
                    conn.sendall(struct.pack(">Q", len(payload))
                                 + payload[:max(1, len(payload) // 2)])
                    break
                try:
                    if op == "init":
                        # A coordinator that redials after a transport
                        # failure replays its init; an *identical* replay
                        # on a connection whose backend already matches is
                        # a no-op (keeping the warm per-shard caches)
                        # instead of a rebuild — init is idempotent.
                        fingerprint = _init_fingerprint(request)
                        reused = (backend is not None
                                  and fingerprint == init_fingerprint)
                        if not reused:
                            if backend is not None:
                                backend.close()
                                backend = None
                            backend = self._build_backend(request)
                            init_fingerprint = fingerprint
                        reply = {"status": "ok", "value": {
                            "pid": os.getpid(),
                            "num_shards": backend.num_shards,
                            "reused": reused,
                        }}
                    elif op == "shard_tasks":
                        if backend is None:
                            raise RuntimeError(
                                "shard_tasks before init on this connection"
                            )
                        reply = {"status": "ok",
                                 "value": backend.run_shard_tasks(request[1])}
                    elif op == "pool_stats":
                        if backend is None:
                            raise RuntimeError(
                                "pool_stats before init on this connection"
                            )
                        reply = {"status": "ok",
                                 "value": backend.pool_stats()}
                    elif op == "ping":
                        reply = {"status": "ok",
                                 "value": {"pid": os.getpid()}}
                    elif op == "close_backend":
                        if backend is not None:
                            backend.close()
                            backend = None
                            init_fingerprint = None
                        reply = {"status": "ok", "value": None}
                    else:
                        raise ValueError(f"unknown request op {op!r}")
                except Exception as error:
                    reply = {
                        "status": "error",
                        "error": f"{type(error).__name__}: {error}",
                        "traceback": traceback.format_exc(),
                    }
                try:
                    payload = encode(reply)
                except TypeError as error:
                    # A result the wire encoding cannot carry must not kill
                    # the connection: report it as an op failure instead.
                    payload = encode({
                        "status": "error",
                        "error": f"unencodable reply: {error}",
                        "traceback": traceback.format_exc(),
                    })
                write_frame(conn, payload)
        except (BackendUnavailableError, OSError):  # pragma: no cover
            pass  # peer vanished mid-reply; nothing left to tell it
        finally:
            if backend is not None:
                backend.close()
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            # Prune this connection's bookkeeping: without it, a long-lived
            # node (the service deployment mode) accumulates one dead socket
            # and one finished Thread object per coordinator that ever
            # dialed in, released only at stop().  stop() may have swapped
            # the lists out concurrently, in which case the entries are
            # already gone and the removes are no-ops.
            with self._lock:
                try:
                    self._connections.remove(conn)
                except ValueError:
                    pass
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:
                    pass

    def _build_backend(self, request: tuple) -> ShardedBackend:
        _, points, num_shards, num_workers, inner_backend = request
        workers = (self._override_workers if self._override_workers is not None
                   else num_workers)
        inner = (self._override_inner if self._override_inner is not None
                 else inner_backend)
        return ShardedBackend(
            np.ascontiguousarray(np.asarray(points, dtype=float)),
            num_shards=int(num_shards),
            num_workers=None if workers is None else int(workers),
            inner_backend=str(inner),
        )


def main(argv=None) -> int:
    """CLI entry point: ``python -m repro.neighbors.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.neighbors.serve",
        description="Serve one node of the distributed neighbor backend.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (default 0: kernel-assigned, "
                             "printed on the LISTENING line)")
    parser.add_argument("--workers", type=int, default=None,
                        help="override the worker-process count requested "
                             "by the coordinator's init")
    parser.add_argument("--inner-backend", default=None,
                        help="override the per-shard strategy requested by "
                             "the coordinator's init")
    args = parser.parse_args(argv)
    server = NodeServer(host=args.host, port=args.port,
                        num_workers=args.workers,
                        inner_backend=args.inner_backend)
    print(f"LISTENING {server.host} {server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
