"""Wire protocol for the distributed neighbor backend.

The distributed backend (``repro.neighbors.distributed``) ships the *exact*
payloads the sharded backend already routes to its worker processes — view
wire triples, per-shard selection specs (including ``BoxSelection`` label
predicates with their cache tokens), compiled :class:`QueryPlan` bundles,
centre blocks, radius grids — over TCP sockets instead of pickle pipes.
This module is the transport: a small self-describing binary encoding plus
length-prefixed framing and a pipelined per-node client.

Why not pickle?  Pickle over a socket executes whatever the peer sends;
a node server must not grant its coordinator (or anything that can reach
its port) arbitrary code execution.  Why not JSON?  The payloads are numpy
arrays whose *bit patterns* are the correctness contract — every float64
must cross the wire exactly, because the parity guarantee ("releases are
bitwise identical whether shards live in threads, processes, or sockets")
is asserted down to the last ulp.  So the encoding here is a tiny tagged
binary format, msgpack-shaped but dependency-free:

* scalars — ``None``, booleans, 64-bit ints (with a big-int escape),
  float64 (IEEE-754 bytes via ``struct 'd'``, never decimal), UTF-8
  strings, raw bytes;
* containers — lists, tuples (distinguished: shard specs are tuples and
  ``("rows", ...)[0] == "rows"`` dispatch relies on it), string-keyed
  dicts;
* arrays — dtype descriptor + shape + C-order buffer, so
  ``decode(encode(a))`` reproduces dtype, shape, and every byte.  Numpy
  scalar types encode as 0-d arrays and decode back to numpy scalars.

Framing is an 8-byte big-endian length prefix per message.  Every
transport-level failure — connection refused, EOF mid-frame, a read
timeout — surfaces as :class:`BackendUnavailableError`; the encoding
itself raises ``TypeError``/``ValueError`` on unsupported payloads, which
is a programming error, not a transport one.
"""

from __future__ import annotations

import io
import select
import socket
import struct
import time
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.neighbors.base import BackendUnavailableError

__all__ = [
    "BackendUnavailableError",
    "NodeClient",
    "PendingReply",
    "decode",
    "encode",
    "read_frame",
    "write_frame",
]

#: Frame header: payload length as an unsigned 64-bit big-endian integer.
_FRAME_HEADER = struct.Struct(">Q")

#: Refuse frames beyond this size (1 GiB): a corrupt or hostile length
#: prefix must not make a node try to allocate petabytes.
MAX_FRAME_BYTES = 1 << 30

# Type tags (one byte each).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"i"        # signed 64-bit
_T_BIGINT = b"I"     # arbitrary precision (length-prefixed decimal text)
_T_FLOAT = b"d"      # IEEE-754 binary64, exact bit pattern
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_TUPLE = b"t"
_T_DICT = b"m"
_T_ARRAY = b"a"

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")


def _encode_into(out: io.BytesIO, value: Any) -> None:
    if value is None:
        out.write(_T_NONE)
    elif value is True:
        out.write(_T_TRUE)
    elif value is False:
        out.write(_T_FALSE)
    elif isinstance(value, (np.generic, np.ndarray)):
        # Numpy scalars ride as 0-d arrays: the decode side turns 0-d back
        # into a scalar, so dtype (and bit pattern) round-trip exactly.
        # (asarray, not ascontiguousarray, which would promote 0-d to 1-d.)
        array = np.asarray(value, order="C")
        if array.dtype.hasobject:
            raise TypeError("object-dtype arrays cannot cross the wire")
        descr = array.dtype.str.encode("ascii")
        out.write(_T_ARRAY)
        out.write(_U32.pack(len(descr)))
        out.write(descr)
        out.write(_U32.pack(array.ndim))
        for extent in array.shape:
            out.write(_I64.pack(int(extent)))
        payload = array.tobytes(order="C")
        out.write(_FRAME_HEADER.pack(len(payload)))
        out.write(payload)
    elif isinstance(value, int):
        if _INT64_MIN <= value <= _INT64_MAX:
            out.write(_T_INT)
            out.write(_I64.pack(value))
        else:
            text = str(value).encode("ascii")
            out.write(_T_BIGINT)
            out.write(_U32.pack(len(text)))
            out.write(text)
    elif isinstance(value, float):
        out.write(_T_FLOAT)
        out.write(_F64.pack(value))
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.write(_T_STR)
        out.write(_FRAME_HEADER.pack(len(payload)))
        out.write(payload)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        payload = bytes(value)
        out.write(_T_BYTES)
        out.write(_FRAME_HEADER.pack(len(payload)))
        out.write(payload)
    elif isinstance(value, (list, tuple)):
        out.write(_T_TUPLE if isinstance(value, tuple) else _T_LIST)
        out.write(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.write(_T_DICT)
        out.write(_U32.pack(len(value)))
        for key, item in value.items():
            if not (key is None or isinstance(key, (str, bool, int, float))):
                raise TypeError(
                    "wire dict keys must be scalars, got "
                    f"{type(key).__name__}"
                )
            _encode_into(out, key)
            _encode_into(out, item)
    else:
        raise TypeError(
            f"cannot encode {type(value).__name__} for the node wire"
        )


def encode(value: Any) -> bytes:
    """Serialise a payload to the tagged binary wire form."""
    out = io.BytesIO()
    _encode_into(out, value)
    return out.getvalue()


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise ValueError("truncated wire payload")
        piece = self.data[self.pos:end]
        self.pos = end
        return piece


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        (length,) = _U32.unpack(reader.take(4))
        return int(reader.take(length).decode("ascii"))
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        (length,) = _FRAME_HEADER.unpack(reader.take(8))
        return reader.take(length).decode("utf-8")
    if tag == _T_BYTES:
        (length,) = _FRAME_HEADER.unpack(reader.take(8))
        return reader.take(length)
    if tag in (_T_LIST, _T_TUPLE):
        (count,) = _U32.unpack(reader.take(4))
        items = [_decode_from(reader) for _ in range(count)]
        return tuple(items) if tag == _T_TUPLE else items
    if tag == _T_DICT:
        (count,) = _U32.unpack(reader.take(4))
        return {_decode_from(reader): _decode_from(reader)
                for _ in range(count)}
    if tag == _T_ARRAY:
        (descr_length,) = _U32.unpack(reader.take(4))
        dtype = np.dtype(reader.take(descr_length).decode("ascii"))
        if dtype.hasobject:  # pragma: no cover - encoder refuses these
            raise ValueError("object-dtype arrays cannot cross the wire")
        (ndim,) = _U32.unpack(reader.take(4))
        shape = tuple(_I64.unpack(reader.take(8))[0] for _ in range(ndim))
        (length,) = _FRAME_HEADER.unpack(reader.take(8))
        array = np.frombuffer(reader.take(length), dtype=dtype).reshape(shape)
        # Writable copy: frombuffer views are read-only and some queries
        # sort their inputs in place.
        array = np.array(array, copy=True)
        if array.ndim == 0:
            return array[()]
        return array
    raise ValueError(f"unknown wire tag {tag!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode` (bitwise: arrays and floats exactly)."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(reader.data):
        raise ValueError("trailing bytes after wire payload")
    return value


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #

def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one length-prefixed frame (transport errors are wrapped)."""
    try:
        sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)
    except (OSError, ValueError) as error:
        raise BackendUnavailableError(
            f"node connection lost while sending: {error}"
        ) from error


def _read_exact(sock: socket.socket, count: int,
                deadline: Optional[float] = None) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise BackendUnavailableError(
                    "node did not answer within the configured timeout"
                )
            sock.settimeout(budget)
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as error:
            raise BackendUnavailableError(
                "node did not answer within the configured timeout"
            ) from error
        except OSError as error:
            raise BackendUnavailableError(
                f"node connection lost while reading: {error}"
            ) from error
        if not chunk:
            raise BackendUnavailableError(
                "node closed the connection mid-message"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, timeout: Optional[float] = None,
               deadline: Optional[float] = None) -> bytes:
    """Read one length-prefixed frame.

    ``timeout`` is a *total* budget for the whole frame, converted to a
    monotonic ``deadline`` up front (callers draining several pipelined
    frames pass an explicit ``deadline`` instead, so the budget spans all
    of them).  A per-``recv`` timeout would let a slow peer stall
    ``k × timeout`` across ``k`` frames — or even across the chunks of one
    large frame — before the failure fired.
    """
    if deadline is None and timeout is not None:
        deadline = time.monotonic() + timeout
    if deadline is None:
        sock.settimeout(None)
    header = _read_exact(sock, _FRAME_HEADER.size, deadline)
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BackendUnavailableError(
            f"node announced an implausible {length}-byte frame"
        )
    return _read_exact(sock, length, deadline)


def send_message(sock: socket.socket, message: Any) -> None:
    """Encode + frame one message."""
    write_frame(sock, encode(message))


def recv_message(sock: socket.socket, timeout: Optional[float] = None,
                 deadline: Optional[float] = None) -> Any:
    """Read + decode one message."""
    return decode(read_frame(sock, timeout=timeout, deadline=deadline))


# --------------------------------------------------------------------------- #
# Client
# --------------------------------------------------------------------------- #

class PendingReply:
    """A reply the peer has not produced yet (FIFO request pipelining).

    :class:`NodeClient` writes requests eagerly and reads replies lazily in
    request order — the asynchronous half of ``submit(plan)``: the
    coordinator can put a plan on every node's wire and only block when a
    result is demanded.  :meth:`wait` drains earlier pending replies first
    (the stream is strictly ordered), so replies can be awaited in any
    order without deadlock.
    """

    __slots__ = ("_client", "_value", "_error", "_done")

    def __init__(self, client: "NodeClient") -> None:
        self._client = client
        self._value = None
        self._error: Optional[BaseException] = None
        self._done = False

    def _resolve(self, value: Any) -> None:
        self._value = value
        self._done = True

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True

    def done(self) -> bool:
        """Whether the reply has already been read off the socket (never
        blocks; drains any bytes the node has pushed so far)."""
        if not self._done:
            self._client._poll()
        return self._done

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until this reply arrives and return the decoded payload."""
        if not self._done:
            self._client._read_until(self, timeout)
        if self._error is not None:
            raise self._error
        return self._value


class NodeClient:
    """One coordinator-side connection to a node server.

    Requests are written immediately; replies stream back strictly in
    request order (the server answers each connection serially).  Every
    transport failure poisons the client — once dead, all pending and
    future calls raise :class:`BackendUnavailableError` instantly rather
    than hanging on a socket that will never speak again.
    """

    def __init__(self, host: str, port: int,
                 connect_timeout: Optional[float] = 10.0,
                 timeout: Optional[float] = None) -> None:
        self.address = (str(host), int(port))
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._pending: List[PendingReply] = []
        self._buffer = b""
        self._dead: Optional[str] = None
        try:
            self._sock = socket.create_connection(self.address,
                                                  timeout=connect_timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as error:
            self._sock = None
            self._dead = f"connect to {host}:{port} failed: {error}"
            raise BackendUnavailableError(self._dead) from error

    # -- lifecycle ----------------------------------------------------- #
    @property
    def alive(self) -> bool:
        return self._dead is None

    @property
    def pending_count(self) -> int:
        """How many requests are awaiting replies on this connection."""
        return len(self._pending)

    def redial(self, connect_timeout: Optional[float] = None) -> None:
        """Reset a poisoned (or live) connection by dialing the server
        afresh.

        The failover layer's entry point: any pending replies are failed
        (their requests died with the old socket and must be replayed by
        the caller), the dead-marker is cleared, and a brand-new TCP
        connection is established.  The server builds per-connection state,
        so the caller must re-send ``init`` before any task reaches the
        new connection.  Raises :class:`BackendUnavailableError` — and
        leaves the client poisoned — when the dial itself fails.
        """
        if self._dead is None:
            self._dead = "connection reset for redial"
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
        self._fail_pending(BackendUnavailableError(self._dead))
        if connect_timeout is None:
            connect_timeout = self.connect_timeout
        try:
            self._sock = socket.create_connection(self.address,
                                                  timeout=connect_timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as error:
            self._sock = None
            self._dead = (f"re-dial of {self.address[0]}:{self.address[1]} "
                          f"failed: {error}")
            raise BackendUnavailableError(self._dead) from error
        self._dead = None

    def ping(self, timeout: Optional[float] = 5.0) -> bool:
        """Cheap health probe: one ``ping`` round trip, ``False`` on any
        failure (a probe must never raise — it is asked exactly when the
        peer is suspect)."""
        if self._dead is not None:
            return False
        try:
            reply = self.call(("ping",), timeout=timeout)
        except (BackendUnavailableError, OSError):
            return False
        return isinstance(reply, dict) and reply.get("status") == "ok"

    def close(self) -> None:
        """Close the socket (idempotent; pending replies fail fast)."""
        if self._dead is None:
            self._dead = "connection closed"
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close never matters
                pass
        self._fail_pending(BackendUnavailableError(self._dead))

    def _mark_dead(self, error: BaseException) -> BackendUnavailableError:
        wrapped = (error if isinstance(error, BackendUnavailableError)
                   else BackendUnavailableError(str(error)))
        if self._dead is None:
            self._dead = (f"node {self.address[0]}:{self.address[1]} "
                          f"unavailable: {wrapped}")
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self._fail_pending(BackendUnavailableError(self._dead))
        return BackendUnavailableError(self._dead)

    def _fail_pending(self, error: BackendUnavailableError) -> None:
        pending, self._pending = self._pending, []
        for reply in pending:
            if not reply._done:
                reply._fail(error)

    def _check_alive(self) -> None:
        if self._dead is not None:
            raise BackendUnavailableError(self._dead)

    # -- request/reply ------------------------------------------------- #
    def send(self, request: Any) -> PendingReply:
        """Write one request and return its (unread) reply handle."""
        self._check_alive()
        reply = PendingReply(self)
        try:
            send_message(self._sock, request)
        except (BackendUnavailableError, OSError) as error:
            raise self._mark_dead(error) from error
        self._pending.append(reply)
        return reply

    def call(self, request: Any, timeout: Optional[float] = None) -> Any:
        """``send`` + ``wait`` in one step (the synchronous path)."""
        return self.send(request).wait(
            self.timeout if timeout is None else timeout
        )

    def _read_until(self, target: PendingReply,
                    timeout: Optional[float]) -> None:
        """Drain replies in FIFO order until ``target`` resolves.

        The timeout is one *overall* monotonic deadline covering every
        frame drained on the way to ``target`` — not a per-frame budget.
        With ``k`` pipelined replies queued ahead of the target, a
        per-frame timeout would let a slow node stall ``k × timeout``
        before the poison fired, which is exactly the hang the timeout
        exists to bound.
        """
        effective = self.timeout if timeout is None else timeout
        deadline = (None if effective is None
                    else time.monotonic() + effective)
        while not target._done:
            self._check_alive()
            if not self._pending:  # pragma: no cover - caller bug guard
                raise BackendUnavailableError(
                    "reply awaited on a connection with no pending requests"
                )
            try:
                message = recv_message(self._sock, deadline=deadline)
            except (BackendUnavailableError, OSError) as error:
                raise self._mark_dead(error) from error
            self._pending.pop(0)._resolve(message)

    def _poll(self) -> None:
        """Drain replies the node has already pushed (used by
        :meth:`PendingReply.done`).  Readability is probed with a zero-wait
        ``select``; a readable socket is then read with the normal per-call
        timeout — never a non-blocking read, which could abandon a
        half-consumed frame and corrupt the reply stream."""
        if self._dead is not None or not self._pending:
            return
        while self._pending:
            try:
                readable, _, _ = select.select([self._sock], [], [], 0)
            except (OSError, ValueError):  # pragma: no cover - closed race
                return
            if not readable:
                return
            try:
                message = recv_message(self._sock, timeout=self.timeout)
            except (BackendUnavailableError, OSError) as error:
                # EOF or a real transport error: poison the client so the
                # next wait() fails fast instead of blocking.
                self._mark_dead(error)
                return
            self._pending.pop(0)._resolve(message)


def _check_port(port_text, node) -> int:
    try:
        port = int(port_text)
    except (TypeError, ValueError):
        raise ValueError(
            f"node address {node!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"node address {node!r} has port {port} outside [1, 65535]"
        )
    return port


def parse_node_address(node) -> Tuple[str, int]:
    """Normalise a node spec to a ``(host, port)`` pair.

    Accepts ``"host:port"`` strings, ``"[ipv6]:port"`` strings (brackets
    stripped, so the host feeds straight into
    ``socket.create_connection``), and ``(host, port)`` pairs.  Bare IPv6
    hosts like ``"::1:9000"`` are rejected — every colon is a candidate
    separator, so the split is ambiguous and the address must be
    bracketed.  Ports are validated to the connectable range
    ``[1, 65535]``.
    """
    if isinstance(node, str):
        if node.startswith("["):
            host, sep, rest = node[1:].partition("]")
            if not sep or not rest.startswith(":") or not host:
                raise ValueError(
                    f"node address {node!r} is not of the form '[ipv6]:port'"
                )
            return host, _check_port(rest[1:], node)
        host, sep, port = node.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"node address {node!r} is not of the form 'host:port'"
            )
        if ":" in host:
            raise ValueError(
                f"node address {node!r} looks like a bare IPv6 address, "
                f"which is ambiguous; bracket the host as '[{host}]:{port}'"
            )
        return host, _check_port(port, node)
    host, port = node
    return str(host), _check_port(port, node)
