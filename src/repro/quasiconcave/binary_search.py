"""Private binary search over a monotone score.

The paper observes (Section 3.1) that once the radius score ``L(r, S)`` has
sensitivity ``O(1)``, a radius with ``L(r) >~ t`` and ``L(r/2) < t`` "can
easily be done privately using binary search with noisy estimates of L for the
comparisons", at the cost of a ``log(sqrt(d) |X|)`` factor in the additive
loss (one noisy comparison per level).  This module implements that
alternative; GoodRadius exposes it via ``method="binary_search"`` so the
E9/E3 experiments can compare the two search strategies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.quasiconcave.quality import QualityFunction
from repro.utils.rng import RngLike, as_generator


@dataclass(frozen=True)
class BinarySearchResult:
    """Outcome of a private binary search."""

    index: int
    noisy_value: float
    comparisons: int


def noisy_binary_search(score: QualityFunction, threshold: float,
                        params: PrivacyParams, sensitivity: float = 1.0,
                        rng: RngLike = None) -> BinarySearchResult:
    """Find (privately) the smallest index whose score reaches ``threshold``.

    Assumes ``score`` is non-decreasing in the index (as ``L(r, S)`` is in the
    radius).  Performs a classical binary search, replacing each comparison
    ``score(mid) >= threshold`` with a Laplace-noised comparison; the privacy
    budget is split evenly over the ``ceil(log2 |F|)`` levels under basic
    composition, so the whole search is ``(epsilon, 0)``-DP.

    If no index reaches the threshold the search converges to the last index;
    callers that care should validate the returned index's (noisy) score.

    Parameters
    ----------
    score:
        Monotone non-decreasing sensitivity-``sensitivity`` score.
    threshold:
        The target level.
    params:
        Privacy budget for the whole search.
    sensitivity:
        Sensitivity of the score (2 for GoodRadius's ``L``).
    rng:
        Seed or generator.
    """
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    generator = as_generator(rng)
    size = score.size
    if size == 1:
        value = score.value(0)
        return BinarySearchResult(index=0, noisy_value=float(value), comparisons=0)

    levels = max(1, int(math.ceil(math.log2(size))))
    per_level_epsilon = params.epsilon / levels
    scale = sensitivity / per_level_epsilon

    low, high = 0, size - 1
    comparisons = 0
    last_noisy = float("nan")
    while low < high:
        mid = (low + high) // 2
        noisy = score.value(mid) + generator.laplace(0.0, scale)
        last_noisy = noisy
        comparisons += 1
        if noisy >= threshold:
            high = mid
        else:
            low = mid + 1
        if comparisons > levels + 2:  # pragma: no cover - defensive
            break
    return BinarySearchResult(index=int(low), noisy_value=float(last_noisy),
                              comparisons=comparisons)


def binary_search_loss(solution_count: int, params: PrivacyParams,
                       sensitivity: float, beta: float) -> float:
    """High-probability bound on the threshold slack of the noisy search.

    Each of the ``ceil(log2 |F|)`` comparisons errs by more than
    ``(sensitivity * levels / epsilon) * ln(levels / beta)`` with probability
    at most ``beta / levels``; a union bound gives the overall guarantee.
    This is the ``log(sqrt(d) |X|)``-type loss the paper contrasts with
    RecConcave's ``2^{O(log*)}``.
    """
    if solution_count < 2:
        raise ValueError("solution_count must be at least 2")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    levels = max(1, int(math.ceil(math.log2(solution_count))))
    return (sensitivity * levels / params.epsilon) * math.log(levels / beta)


__all__ = ["BinarySearchResult", "noisy_binary_search", "binary_search_loss"]
