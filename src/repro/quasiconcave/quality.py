"""Quality-function interface for quasi-concave promise problems.

A quasi-concave promise problem (paper Definition 4.2) consists of a totally
ordered finite solution set ``F`` (here always represented as indices
``0 .. size-1``), a sensitivity-1 quality function ``Q(S, f)``, an
approximation parameter ``alpha`` and a quality promise ``p``.  The solver
only interacts with the database through ``Q``, so the interface below is all
it needs: evaluate the quality of one index, or of a batch of indices (the
batch form lets numpy-backed qualities such as GoodRadius's ``L``-based score
amortise their per-call cost).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np


class QualityFunction:
    """Abstract sensitivity-1 quality function over indices ``0 .. size-1``."""

    @property
    def size(self) -> int:
        """The number of candidate solutions ``|F|``."""
        raise NotImplementedError

    def value(self, index: int) -> float:
        """Quality of a single candidate."""
        raise NotImplementedError

    def values(self, indices: Sequence[int]) -> np.ndarray:
        """Qualities of a batch of candidates (default: loop over
        :meth:`value`; override for vectorised evaluation)."""
        return np.array([self.value(int(index)) for index in indices], dtype=float)

    def prefetch(self, indices: Sequence[int]) -> None:
        """Hint that the given indices will be evaluated soon.

        Purely a performance hook: implementations may start computing the
        qualities asynchronously (``PlanQuality`` submits one backend
        :class:`~repro.neighbors.QueryPlan` and overlaps the round trip with
        the caller's other work), but the values eventually returned by
        :meth:`value` / :meth:`values` are exactly what eager evaluation
        would produce.  The default does nothing.
        """


class ArrayQuality(QualityFunction):
    """Quality function backed by a precomputed array of scores."""

    def __init__(self, scores) -> None:
        scores = np.asarray(scores, dtype=float).reshape(-1)
        if scores.size == 0:
            raise ValueError("scores must be non-empty")
        self._scores = scores

    @property
    def size(self) -> int:
        return int(self._scores.size)

    def value(self, index: int) -> float:
        return float(self._scores[index])

    def values(self, indices: Sequence[int]) -> np.ndarray:
        return self._scores[np.asarray(indices, dtype=np.int64)]


class CallableQuality(QualityFunction):
    """Quality function backed by a callable, with memoisation.

    Parameters
    ----------
    function:
        Callable mapping an index to a quality value.
    size:
        The number of candidates.
    batch_function:
        Optional callable mapping an integer array of indices to an array of
        qualities; used when available to avoid Python-level loops.
    """

    def __init__(self, function: Callable[[int], float], size: int,
                 batch_function: Callable[[np.ndarray], np.ndarray] = None) -> None:
        if size < 1:
            raise ValueError(f"size must be at least 1, got {size}")
        self._function = function
        self._batch_function = batch_function
        self._size = int(size)
        self._cache: Dict[int, float] = {}

    @property
    def size(self) -> int:
        return self._size

    @property
    def evaluations(self) -> int:
        """How many distinct indices have been evaluated (for efficiency tests)."""
        return len(self._cache)

    def value(self, index: int) -> float:
        index = int(index)
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range [0, {self._size})")
        if index not in self._cache:
            self._cache[index] = float(self._function(index))
        return self._cache[index]

    def values(self, indices: Sequence[int]) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        missing = [int(i) for i in np.unique(indices) if int(i) not in self._cache]
        if missing:
            if self._batch_function is not None:
                computed = np.asarray(self._batch_function(np.asarray(missing)), dtype=float)
                for key, val in zip(missing, computed):
                    self._cache[int(key)] = float(val)
            else:
                for key in missing:
                    self._cache[key] = float(self._function(key))
        return np.array([self._cache[int(i)] for i in indices], dtype=float)

    def prefetch(self, indices: Sequence[int]) -> None:
        """Warm the memoisation cache (synchronously) for a batch of
        indices; later :meth:`value` / :meth:`values` calls on them are
        cache hits."""
        self.values(np.asarray(indices, dtype=np.int64))


class PlanQuality(QualityFunction):
    """Quality function evaluated through backend :class:`QueryPlan`\\ s.

    The bridge between the quasi-concave solvers and the
    :class:`~repro.neighbors.NeighborBackend` layer: a batch of candidate
    indices compiles into one query plan, and :meth:`prefetch` *submits*
    that plan asynchronously — on a sharded/distributed backend the whole
    batch is one round trip per shard, in flight while the caller keeps
    working — with :meth:`values` resolving the future on first use.
    Resolution order is submission order and every plan merge is
    shard-order deterministic, so the returned qualities are bitwise what
    eager per-index evaluation would produce; the solver's noise draws
    never depend on how the evaluations were transported.

    Parameters
    ----------
    backend:
        The :class:`~repro.neighbors.NeighborBackend` the plans run on.
    size:
        The number of candidate solutions ``|F|``.
    compile_batch:
        ``compile_batch(plan, indices)``: appends the queries answering the
        given ascending unique index batch to ``plan`` and returns a token
        (typically the result slot) handed back to ``resolve_batch``.
    resolve_batch:
        ``resolve_batch(results, token, indices)``: maps the executed
        plan's result list to the ``(len(indices),)`` float qualities of
        the batch, in batch order.
    """

    def __init__(self, backend, size: int,
                 compile_batch: Callable[..., Any],
                 resolve_batch: Callable[..., np.ndarray]) -> None:
        if size < 1:
            raise ValueError(f"size must be at least 1, got {size}")
        self._backend = backend
        self._size = int(size)
        self._compile_batch = compile_batch
        self._resolve_batch = resolve_batch
        self._cache: Dict[int, float] = {}
        self._pending: List[Tuple[Any, Any, np.ndarray]] = []
        self._in_flight: set = set()

    @property
    def size(self) -> int:
        return self._size

    @property
    def backend(self):
        """The backend the quality's plans run on."""
        return self._backend

    @property
    def evaluations(self) -> int:
        """How many distinct indices have been evaluated (resolved plans
        only; for efficiency tests)."""
        return len(self._cache)

    def _check_indices(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64).reshape(-1)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) >= self._size):
            raise IndexError(f"indices must lie in [0, {self._size})")
        return indices

    def prefetch(self, indices: Sequence[int]) -> None:
        indices = self._check_indices(indices)
        missing = np.unique(indices)
        missing = missing[[int(i) not in self._cache
                           and int(i) not in self._in_flight
                           for i in missing]]
        if missing.size == 0:
            return
        from repro.neighbors import QueryPlan

        plan = QueryPlan()
        token = self._compile_batch(plan, missing)
        future = self._backend.submit(plan)
        self._pending.append((future, token, missing))
        self._in_flight.update(int(i) for i in missing)

    def _drain(self) -> None:
        """Resolve every in-flight plan, in submission order."""
        pending, self._pending = self._pending, []
        for future, token, batch in pending:
            scores = np.asarray(
                self._resolve_batch(future.result(), token, batch),
                dtype=float,
            ).reshape(-1)
            if scores.shape[0] != batch.shape[0]:
                raise ValueError(
                    f"resolve_batch returned {scores.shape[0]} qualities "
                    f"for a batch of {batch.shape[0]} indices"
                )
            for key, val in zip(batch, scores):
                self._cache[int(key)] = float(val)
                self._in_flight.discard(int(key))

    def value(self, index: int) -> float:
        return float(self.values([index])[0])

    def values(self, indices: Sequence[int]) -> np.ndarray:
        indices = self._check_indices(indices)
        if any(int(i) not in self._cache for i in np.unique(indices)):
            self.prefetch(indices)
            self._drain()
        return np.array([self._cache[int(i)] for i in indices], dtype=float)


def is_quasi_concave(scores, tolerance: float = 1e-9) -> bool:
    """Check whether a score array is quasi-concave.

    ``Q`` is quasi-concave iff for every ``i <= l <= j``,
    ``Q(l) >= min(Q(i), Q(j))`` — equivalently, the sequence never dips below
    a level it later exceeds again.  Used by tests and by debug assertions in
    the solvers.
    """
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if scores.size <= 2:
        return True
    # Quasi-concave iff scores first (weakly) rise to a peak then (weakly)
    # fall, up to tolerance: running max from the left and running max from
    # the right must cover every value.
    prefix_max = np.maximum.accumulate(scores)
    suffix_max = np.maximum.accumulate(scores[::-1])[::-1]
    lower_envelope = np.minimum(prefix_max, suffix_max)
    return bool(np.all(scores >= lower_envelope - tolerance))


__all__ = [
    "QualityFunction",
    "ArrayQuality",
    "CallableQuality",
    "PlanQuality",
    "is_quasi_concave",
]
