"""Quality-function interface for quasi-concave promise problems.

A quasi-concave promise problem (paper Definition 4.2) consists of a totally
ordered finite solution set ``F`` (here always represented as indices
``0 .. size-1``), a sensitivity-1 quality function ``Q(S, f)``, an
approximation parameter ``alpha`` and a quality promise ``p``.  The solver
only interacts with the database through ``Q``, so the interface below is all
it needs: evaluate the quality of one index, or of a batch of indices (the
batch form lets numpy-backed qualities such as GoodRadius's ``L``-based score
amortise their per-call cost).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np


class QualityFunction:
    """Abstract sensitivity-1 quality function over indices ``0 .. size-1``."""

    @property
    def size(self) -> int:
        """The number of candidate solutions ``|F|``."""
        raise NotImplementedError

    def value(self, index: int) -> float:
        """Quality of a single candidate."""
        raise NotImplementedError

    def values(self, indices: Sequence[int]) -> np.ndarray:
        """Qualities of a batch of candidates (default: loop over
        :meth:`value`; override for vectorised evaluation)."""
        return np.array([self.value(int(index)) for index in indices], dtype=float)


class ArrayQuality(QualityFunction):
    """Quality function backed by a precomputed array of scores."""

    def __init__(self, scores) -> None:
        scores = np.asarray(scores, dtype=float).reshape(-1)
        if scores.size == 0:
            raise ValueError("scores must be non-empty")
        self._scores = scores

    @property
    def size(self) -> int:
        return int(self._scores.size)

    def value(self, index: int) -> float:
        return float(self._scores[index])

    def values(self, indices: Sequence[int]) -> np.ndarray:
        return self._scores[np.asarray(indices, dtype=np.int64)]


class CallableQuality(QualityFunction):
    """Quality function backed by a callable, with memoisation.

    Parameters
    ----------
    function:
        Callable mapping an index to a quality value.
    size:
        The number of candidates.
    batch_function:
        Optional callable mapping an integer array of indices to an array of
        qualities; used when available to avoid Python-level loops.
    """

    def __init__(self, function: Callable[[int], float], size: int,
                 batch_function: Callable[[np.ndarray], np.ndarray] = None) -> None:
        if size < 1:
            raise ValueError(f"size must be at least 1, got {size}")
        self._function = function
        self._batch_function = batch_function
        self._size = int(size)
        self._cache: Dict[int, float] = {}

    @property
    def size(self) -> int:
        return self._size

    @property
    def evaluations(self) -> int:
        """How many distinct indices have been evaluated (for efficiency tests)."""
        return len(self._cache)

    def value(self, index: int) -> float:
        index = int(index)
        if not (0 <= index < self._size):
            raise IndexError(f"index {index} out of range [0, {self._size})")
        if index not in self._cache:
            self._cache[index] = float(self._function(index))
        return self._cache[index]

    def values(self, indices: Sequence[int]) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        missing = [int(i) for i in np.unique(indices) if int(i) not in self._cache]
        if missing:
            if self._batch_function is not None:
                computed = np.asarray(self._batch_function(np.asarray(missing)), dtype=float)
                for key, val in zip(missing, computed):
                    self._cache[int(key)] = float(val)
            else:
                for key in missing:
                    self._cache[key] = float(self._function(key))
        return np.array([self._cache[int(i)] for i in indices], dtype=float)


def is_quasi_concave(scores, tolerance: float = 1e-9) -> bool:
    """Check whether a score array is quasi-concave.

    ``Q`` is quasi-concave iff for every ``i <= l <= j``,
    ``Q(l) >= min(Q(i), Q(j))`` — equivalently, the sequence never dips below
    a level it later exceeds again.  Used by tests and by debug assertions in
    the solvers.
    """
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if scores.size <= 2:
        return True
    # Quasi-concave iff scores first (weakly) rise to a peak then (weakly)
    # fall, up to tolerance: running max from the left and running max from
    # the right must cover every value.
    prefix_max = np.maximum.accumulate(scores)
    suffix_max = np.maximum.accumulate(scores[::-1])[::-1]
    lower_envelope = np.minimum(prefix_max, suffix_max)
    return bool(np.all(scores >= lower_envelope - tolerance))


__all__ = ["QualityFunction", "ArrayQuality", "CallableQuality", "is_quasi_concave"]
