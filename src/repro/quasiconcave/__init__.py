"""Private solvers for quasi-concave promise problems (paper Section 4.1).

The paper's GoodRadius delegates its radius search to Algorithm RecConcave of
Beimel–Nissim–Stemmer (2013), which solves *quasi-concave promise problems*
(Definition 4.2) with an additive loss of only ``2^{O(log* |F|)}`` in the
quality promise.  This package provides:

* :class:`~repro.quasiconcave.quality.QualityFunction` — the interface a
  sensitivity-1, quasi-concave quality function must implement.
* :func:`~repro.quasiconcave.rec_concave.rec_concave` — a structurally
  faithful reimplementation of the recursive solver (see the module docstring
  for the documented substitution on the log* constant).
* :func:`~repro.quasiconcave.binary_search.noisy_binary_search` — the simpler
  private binary search over a monotone score, which the paper mentions as the
  ``log |X|``-loss alternative.
"""

from repro.quasiconcave.quality import (
    QualityFunction,
    ArrayQuality,
    CallableQuality,
    PlanQuality,
)
from repro.quasiconcave.rec_concave import rec_concave, RecConcaveResult, rec_concave_promise
from repro.quasiconcave.binary_search import noisy_binary_search, BinarySearchResult

__all__ = [
    "QualityFunction",
    "ArrayQuality",
    "CallableQuality",
    "PlanQuality",
    "rec_concave",
    "RecConcaveResult",
    "rec_concave_promise",
    "noisy_binary_search",
    "BinarySearchResult",
]
