"""RecConcave: private solver for quasi-concave promise problems.

Paper Theorem 4.3 (quoting Beimel–Nissim–Stemmer 2013): there is an
``(epsilon, delta)``-DP algorithm that, given a sensitivity-1 quasi-concave
quality ``Q`` over a totally ordered finite solution set ``F`` and a quality
promise ``p`` with ``max_f Q(S, f) >= p >= Gamma``, outputs ``f`` with
``Q(S, f) >= (1 - alpha) p`` with probability ``1 - beta``, where
``Gamma ~ 8^{log* |F|} * (log* |F| / (alpha epsilon)) * log(log* |F| / (beta
delta))``.

This module reimplements the solver with the same *structure* as BNS13:

1. **Length reduction.**  For every dyadic length ``2^j`` define the derived
   quality ``Q2(j) = max`` over intervals of ``2^j`` consecutive solutions of
   the interval's minimum quality.  Because ``Q`` is quasi-concave the
   interval minimum equals the minimum of the two endpoint qualities, so
   ``Q2`` is computable from endpoint evaluations only.  ``Q2`` is again
   quasi-concave over the (tiny, ``log |F|``-sized) domain of lengths.
2. **Choose a length privately** with the exponential mechanism over the
   ``log |F| + 1`` candidate lengths (quality ``Q2``).
3. **Choose an interval of that length privately** with report-noisy-max over
   the two staggered partitions of ``F`` into intervals of the chosen length
   (interval quality = endpoint minimum), and return its midpoint.

Documented substitution (see DESIGN.md): BNS13 replaces steps 2–3 with a
recursive call and the stability-based *choosing mechanism* to obtain the
``2^{O(log* |F|)}`` promise; we use one level of reduction plus exponential-
mechanism selections, which yields a promise requirement of
``O((1/(alpha epsilon)) * log(|F| / beta))`` — the same dependence the paper
cites for plain private binary search.  The interface, privacy accounting and
quasi-concavity machinery are identical, and the paper-faithful promise value
is still reported by :func:`rec_concave_promise` for parameter studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.mechanisms.exponential import report_noisy_max
from repro.quasiconcave.quality import QualityFunction
from repro.utils.iterated_log import log_star
from repro.utils.rng import RngLike, spawn_generators


@dataclass(frozen=True)
class RecConcaveResult:
    """Outcome of a :func:`rec_concave` invocation."""

    index: int
    quality: float
    chosen_length: int
    num_evaluations: int


def rec_concave_promise(solution_count: int, alpha: float, beta: float,
                        params: PrivacyParams) -> float:
    """The paper-faithful promise value Γ of Theorem 4.3.

    ``Gamma = 8^{log* |F|} * (36 log* |F| / (alpha epsilon)) *
    log(12 log* |F| / (beta delta))``.

    GoodRadius (Algorithm 1) instantiates this with ``|F| = 2 |X| sqrt(d)``,
    ``alpha = 1/2`` and its own ``(epsilon/2, delta)`` sub-budget, giving the
    constant it calls Γ.
    """
    if solution_count < 2:
        raise ValueError("solution_count must be at least 2")
    if not (0 < alpha < 1):
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    if not (0 < beta < 1):
        raise ValueError(f"beta must lie in (0, 1), got {beta}")
    if params.delta <= 0:
        raise ValueError("the promise formula requires delta > 0")
    ls = max(1, log_star(solution_count))
    return (
        8.0 ** ls
        * (36.0 * ls / (alpha * params.epsilon))
        * math.log(12.0 * ls / (beta * params.delta))
    )


def practical_promise(solution_count: int, alpha: float, beta: float,
                      params: PrivacyParams) -> float:
    """The promise requirement of this implementation (see module docstring).

    ``O((1/(alpha epsilon)) * log(|F| / beta))`` — the utility analysis of two
    exponential-mechanism selections over ``log|F|+1`` and ``O(|F|)``
    candidates respectively.
    """
    if solution_count < 2:
        raise ValueError("solution_count must be at least 2")
    return (8.0 / (alpha * params.epsilon)) * math.log(
        4.0 * solution_count / beta
    )


def _interval_minima(quality: QualityFunction, starts: np.ndarray,
                     length: int) -> np.ndarray:
    """Minimum quality of each interval ``[start, start + length)``.

    For a quasi-concave quality the interval minimum is attained at an
    endpoint, so only the two endpoint qualities are evaluated.
    """
    ends = starts + length - 1
    left = quality.values(starts)
    right = quality.values(ends)
    return np.minimum(left, right)


def rec_concave(quality: QualityFunction, promise: float, alpha: float,
                params: PrivacyParams, rng: RngLike = None) -> RecConcaveResult:
    """Privately choose an index with quality close to the promise.

    Parameters
    ----------
    quality:
        Sensitivity-1, quasi-concave quality function over ``0 .. size-1``.
    promise:
        The quality promise ``p``: the caller asserts
        ``max_f Q(f) >= promise``.
    alpha:
        Approximation parameter; the target is ``Q(result) >= (1-alpha) p``.
    params:
        Privacy budget.  The implementation spends ``epsilon/2`` on the length
        choice and ``epsilon/2`` on the interval choice; both selections are
        pure-DP so the overall guarantee is ``(epsilon, 0) ⊆ (epsilon,
        delta)``-DP.
    rng:
        Seed or generator.

    Returns
    -------
    RecConcaveResult
    """
    if promise <= 0:
        raise ValueError(f"promise must be positive, got {promise}")
    if not (0 < alpha < 1):
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    size = quality.size
    length_rng, interval_rng = spawn_generators(rng, 2)
    half_epsilon = PrivacyParams(params.epsilon / 2.0, params.delta)

    if size == 1:
        value = quality.value(0)
        return RecConcaveResult(index=0, quality=value, chosen_length=1,
                                num_evaluations=1)

    # The length-1 pass below evaluates every index, so announcing the full
    # range up-front changes nothing about *what* is evaluated — it only lets
    # plan-backed qualities ship the whole batch in one backend round trip.
    quality.prefetch(np.arange(size, dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Step 1-2: derived quality over dyadic lengths, choose a length.
    # ------------------------------------------------------------------ #
    max_level = int(math.ceil(math.log2(size)))
    lengths = [min(2 ** j, size) for j in range(max_level + 1)]
    length_scores = []
    for length in lengths:
        starts = np.arange(0, size - length + 1, dtype=np.int64)
        minima = _interval_minima(quality, starts, length)
        length_scores.append(float(minima.max()))
    # Q2 over lengths is the score of the best interval of that length; the
    # promise transfers: the optimum f alone is an interval of length 1, so
    # Q2(length=1) >= promise, and Q2 is non-increasing in the length for a
    # quasi-concave Q (larger intervals can only have smaller minima).  We
    # still select privately because length_scores depends on the data.
    chosen_length_index = report_noisy_max(
        length_scores, half_epsilon, sensitivity=1.0, rng=length_rng
    )
    chosen_length = lengths[chosen_length_index]

    # ------------------------------------------------------------------ #
    # Step 3: choose an interval of the chosen length, return its midpoint.
    # ------------------------------------------------------------------ #
    starts = np.arange(0, size - chosen_length + 1, max(1, chosen_length // 2),
                       dtype=np.int64)
    if starts.size == 0 or starts[-1] != size - chosen_length:
        starts = np.append(starts, size - chosen_length)
    interval_scores = _interval_minima(quality, starts, chosen_length)
    chosen_interval = report_noisy_max(
        interval_scores, half_epsilon, sensitivity=1.0, rng=interval_rng
    )
    start = int(starts[chosen_interval])
    index = start + chosen_length // 2
    index = min(index, size - 1)
    value = quality.value(index)
    evaluations = getattr(quality, "evaluations", None)
    return RecConcaveResult(
        index=index,
        quality=float(value),
        chosen_length=int(chosen_length),
        num_evaluations=int(evaluations) if evaluations is not None else -1,
    )


__all__ = [
    "RecConcaveResult",
    "rec_concave",
    "rec_concave_promise",
    "practical_promise",
]
