"""Baselines from Table 1 of the paper, plus non-private references."""

from repro.baselines.nonprivate import nonprivate_one_cluster
from repro.baselines.exponential_ball import exponential_mechanism_cluster
from repro.baselines.private_aggregation import private_aggregation_cluster
from repro.baselines.threshold_release import (
    threshold_release_cluster_1d,
    HierarchicalThresholdRelease,
)

__all__ = [
    "nonprivate_one_cluster",
    "exponential_mechanism_cluster",
    "private_aggregation_cluster",
    "threshold_release_cluster_1d",
    "HierarchicalThresholdRelease",
]
