"""The exponential-mechanism baseline (Table 1, row "Exponential mechanism").

Section 1.2: given a radius ``r`` such that some ball of radius ``r`` in
``X^d`` contains ``t`` points, the exponential mechanism over all ``|X|^d``
candidate centres identifies a ball of radius ``r`` containing
``t - O(log(|X|^d)/epsilon)`` points.  The radius itself is found with a
private binary search over candidate radii, multiplying the loss by another
``O(log(sqrt(d) |X|))`` factor.  The resulting approximation factor is
``w = 1`` (it searches over *exact* grid radii), but the running time is
``poly(n, |X|^d)`` — exponential in the dimension — which is why the paper
only treats it as a comparison point.

This implementation enumerates the full grid of candidate centres, so it is
only usable for small ``|X|`` and ``d <= 2``-ish; the Table-1 experiment runs
it exactly in that regime.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.mechanisms.exponential import report_noisy_max
from repro.neighbors import HAVE_SCIPY_TREE, BackendLike, resolve_backend
from repro.quasiconcave.binary_search import noisy_binary_search
from repro.quasiconcave.quality import CallableQuality
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points

_MAX_CANDIDATE_CENTERS = 2_000_000


def _grid_centers(domain: GridDomain) -> np.ndarray:
    """Enumerate all grid points of the domain (guarded against explosion)."""
    if domain.num_points > _MAX_CANDIDATE_CENTERS:
        raise ValueError(
            f"the exponential-mechanism baseline enumerates |X|^d = "
            f"{domain.num_points:.3g} candidate centres, which exceeds the "
            f"guard of {_MAX_CANDIDATE_CENTERS}; use a smaller domain or "
            "lower dimension"
        )
    axis = domain.axis_values()
    grids = list(itertools.product(axis, repeat=domain.dimension))
    return np.asarray(grids, dtype=float)


def exponential_mechanism_cluster(points, target: int, params: PrivacyParams,
                                  domain: GridDomain, beta: float = 0.1,
                                  rng: RngLike = None,
                                  backend: BackendLike = None) -> OneClusterResult:
    """Solve the 1-cluster problem with the exponential mechanism.

    The budget is split evenly between the radius binary search and the
    centre selection.

    Parameters
    ----------
    points:
        ``(n, d)`` input points (should lie in ``domain``).
    target:
        Desired cluster size ``t``.
    params:
        Privacy budget.
    domain:
        The finite grid domain whose grid points are the candidate centres.
    beta:
        Failure probability (only used for reporting bounds).
    rng:
        Seed or generator.
    backend:
        Neighbor-backend selection for the per-centre capture counts (the
        former implementation materialised the full ``(|X|^d, n)`` distance
        matrix; backends answer the same counts without it).
    """
    points = check_points(points, dimension=domain.dimension)
    target = check_integer(target, "target", minimum=1)
    if target > points.shape[0]:
        raise ValueError("target cannot exceed the number of points")
    radius_rng, center_rng = spawn_generators(rng, 2)
    half = params.part(0.5)

    centers = _grid_centers(domain)
    candidate_radii = domain.candidate_radii()
    if backend is None:
        # This baseline's load is the |X|^d candidate centres, not the n data
        # points auto_backend keys on, so default to the tree: each probed
        # radius is one batched query over all centres.
        backend = "tree" if HAVE_SCIPY_TREE else "chunked"
    neighbor_backend = resolve_backend(points, backend)

    # Binary search for the smallest radius capturing ~t points at some
    # centre.  The max-count score has sensitivity 1 in the database.  The
    # batched count_within_many call fuses a whole probe batch into one
    # backend request (one distance pass per slab instead of one per radius;
    # one fan-out per shard when the backend is sharded).
    def batch_scores(indices: np.ndarray) -> np.ndarray:
        radii = candidate_radii[np.asarray(indices, dtype=np.int64)]
        counts = neighbor_backend.count_within_many(centers, radii)
        return counts.max(axis=1).astype(float)

    monotone = CallableQuality(
        function=lambda index: batch_scores(np.array([index]))[0],
        size=candidate_radii.shape[0],
        batch_function=batch_scores,
    )
    search = noisy_binary_search(monotone, threshold=float(target), params=half,
                                 sensitivity=1.0, rng=radius_rng)
    radius = float(candidate_radii[search.index])

    # Exponential mechanism over candidate centres at that radius.
    counts = neighbor_backend.query_radius_counts(centers, radius).astype(float)
    chosen = report_noisy_max(counts, half, sensitivity=1.0, rng=center_rng)
    center = centers[chosen]

    radius_result = GoodRadiusResult(radius=radius, gamma=0.0,
                                     score=float(counts[chosen]),
                                     zero_cluster=False,
                                     method="exponential_mechanism")
    center_result = GoodCenterResult(center=center, radius_bound=radius,
                                     attempts=1, projected_dimension=domain.dimension,
                                     captured_count=int(counts[chosen]))
    return OneClusterResult(ball=Ball(center=center, radius=radius),
                            radius_result=radius_result,
                            center_result=center_result, target=target)


def exponential_baseline_loss_bound(domain: GridDomain, params: PrivacyParams,
                                    beta: float = 0.1) -> float:
    """The Table-1 loss of this baseline:
    ``Delta = O~(d) * log^2(|X|) / epsilon`` (centre selection over ``|X|^d``
    candidates plus a binary search over ``O(log(sqrt(d)|X|))`` radii)."""
    d, side = domain.dimension, domain.side
    center_loss = (2.0 / params.epsilon) * math.log(domain.num_points / beta)
    radius_levels = max(1, int(math.ceil(math.log2(domain.rec_concave_solution_count()))))
    radius_loss = (radius_levels / params.epsilon) * math.log(radius_levels / beta)
    return center_loss + radius_loss


__all__ = ["exponential_mechanism_cluster", "exponential_baseline_loss_bound"]
