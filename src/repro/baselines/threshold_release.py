"""Query release for threshold functions, d = 1 (Table 1, row "Query release").

Section 1.2: in one dimension the 1-cluster problem reduces to privately
releasing approximate counts for every interval (equivalently every threshold
function) and then scanning for the smallest interval whose released count
reaches ``t``.  The released interval has radius exactly ``r_opt`` (``w = 1``)
and contains at least ``t - O(Delta)`` points, where ``Delta`` is the query
release error.

Documented substitution (DESIGN.md): the state-of-the-art release of
Bun–Nissim–Stemmer–Vadhan achieves ``Delta ~ 2^{O(log* |X|)} / epsilon``; we
implement the standard *hierarchical (dyadic-tree) mechanism*, whose error is
``Delta ~ O(log^{1.5} |X| / epsilon)`` — the same pipeline (noisy interval
counts, then smallest-interval search) with a polylog rather than log* error,
which preserves the qualitative comparison in Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer, check_points


class HierarchicalThresholdRelease:
    """Dyadic-tree release of interval counts over a finite 1-d grid.

    Builds a complete binary tree over the ``|X|`` grid cells, adds Laplace
    noise ``Lap(depth/epsilon)`` to every node count, and answers any interval
    query as a sum of ``O(log |X|)`` node values.  Releasing the whole tree is
    a single ``(epsilon, 0)``-DP computation because each data point
    contributes to exactly ``depth`` node counts (L1-sensitivity ``depth``).
    """

    def __init__(self, domain: GridDomain, params: PrivacyParams,
                 rng: RngLike = None) -> None:
        if domain.dimension != 1:
            raise ValueError("HierarchicalThresholdRelease is 1-d only")
        self.domain = domain
        self.params = params
        self._rng = as_generator(rng)
        self._levels = max(1, int(math.ceil(math.log2(domain.side))))
        self._size = 2 ** self._levels
        self._noisy_tree: Optional[list] = None

    @property
    def depth(self) -> int:
        """The number of levels in the dyadic tree."""
        return self._levels + 1

    def fit(self, values: np.ndarray) -> "HierarchicalThresholdRelease":
        """Ingest the data and release the noisy tree."""
        values = np.asarray(values, dtype=float).reshape(-1)
        cells = np.clip(
            np.rint((values - self.domain.low) / self.domain.step).astype(np.int64),
            0, self._size - 1,
        )
        base = np.bincount(cells, minlength=self._size).astype(float)
        levels = [base]
        current = base
        while current.size > 1:
            current = current.reshape(-1, 2).sum(axis=1)
            levels.append(current)
        scale = self.depth / self.params.epsilon
        self._noisy_tree = [
            level + self._rng.laplace(0.0, scale, size=level.size) for level in levels
        ]
        return self

    def interval_count(self, low_cell: int, high_cell: int) -> float:
        """Released count of grid cells in ``[low_cell, high_cell]`` (inclusive)."""
        if self._noisy_tree is None:
            raise RuntimeError("call fit() before querying")
        if high_cell < low_cell:
            return 0.0
        low_cell = max(0, int(low_cell))
        high_cell = min(self._size - 1, int(high_cell))
        total = 0.0
        level = 0
        lo, hi = low_cell, high_cell
        while lo <= hi:
            if lo % 2 == 1:
                total += self._noisy_tree[level][lo]
                lo += 1
            if hi % 2 == 0:
                total += self._noisy_tree[level][hi]
                hi -= 1
            lo //= 2
            hi //= 2
            level += 1
            if level >= len(self._noisy_tree):
                break
        return float(total)

    def prefix_counts(self) -> np.ndarray:
        """Released counts of the prefixes ``[0, j]`` for every cell ``j``."""
        return np.array([self.interval_count(0, j) for j in range(self._size)])

    def error_bound(self, beta: float = 0.1) -> float:
        """High-probability error of any single interval query:
        ``O(depth^{1.5} / epsilon * log(1/beta))``."""
        return (self.depth ** 1.5 / self.params.epsilon) * math.log(2.0 * self._size / beta)


def threshold_release_cluster_1d(points, target: int, params: PrivacyParams,
                                 domain: Optional[GridDomain] = None,
                                 beta: float = 0.1,
                                 rng: RngLike = None) -> OneClusterResult:
    """Solve the 1-d 1-cluster problem via threshold query release.

    Releases the dyadic tree once, then (as pure post-processing) scans all
    ``O(|X|^2)`` grid intervals — implemented as a two-pointer sweep over the
    released prefix counts — for the shortest interval whose released count
    reaches ``target``.
    """
    points = check_points(points, dimension=1)
    target = check_integer(target, "target", minimum=1)
    if domain is None:
        low = float(np.floor(points.min()))
        high = float(np.ceil(points.max()))
        domain = GridDomain(dimension=1, side=1025, low=low, high=max(high, low + 1.0))
    release = HierarchicalThresholdRelease(domain, params, rng=rng).fit(points[:, 0])
    prefix = release.prefix_counts()

    # Two-pointer sweep: for each left cell, the smallest right cell whose
    # released interval count reaches the target.
    size = prefix.shape[0]
    best_width = None
    best_interval = (0, size - 1)
    right = 0
    for left in range(size):
        if right < left:
            right = left
        left_prefix = prefix[left - 1] if left > 0 else 0.0
        while right < size and prefix[right] - left_prefix < target:
            right += 1
        if right >= size:
            break
        width = right - left
        if best_width is None or width < best_width:
            best_width = width
            best_interval = (left, right)
    low_cell, high_cell = best_interval
    low_value = domain.low + low_cell * domain.step
    high_value = domain.low + high_cell * domain.step
    center = np.array([(low_value + high_value) / 2.0])
    radius = (high_value - low_value) / 2.0

    captured = int(np.count_nonzero(
        np.abs(points[:, 0] - center[0]) <= radius + 1e-12
    ))
    radius_result = GoodRadiusResult(radius=radius, gamma=release.error_bound(beta),
                                     score=float(captured), zero_cluster=radius == 0.0,
                                     method="threshold_release")
    center_result = GoodCenterResult(center=center, radius_bound=radius, attempts=1,
                                     projected_dimension=1, captured_count=captured)
    return OneClusterResult(ball=Ball(center=center, radius=radius),
                            radius_result=radius_result,
                            center_result=center_result, target=target)


__all__ = ["HierarchicalThresholdRelease", "threshold_release_cluster_1d"]
