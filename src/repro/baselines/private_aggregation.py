"""The private-aggregation baseline (Table 1, row "Private aggregation [16]").

Nissim–Raskhodnikova–Smith (2007) aggregate by privately averaging: when a
*majority* (``t >= 0.51 n``) of the points lie in a ball of radius ``r_opt``,
a noisy center can be computed whose error is ``O(sqrt(d) r_opt / epsilon)``
per the Table-1 row.  The weaknesses the paper highlights — majority-only,
``sqrt(d)`` radius blow-up, large ``n`` requirement — are exactly what the
experiments measure against the 1-cluster algorithm.

We implement the baseline in the same spirit with modern primitives: a
coordinate-wise private trimmed mean.  Each coordinate's trimmed mean (middle
51% of the points) has bounded sensitivity ``axis_length / (0.51 n)``; adding
Gaussian noise scaled to that sensitivity releases a centre, and the radius is
then estimated privately as the distance capturing ``t`` points via a noisy
binary search.  When the cluster is not a majority the trimmed mean lands far
from it, reproducing the "uninformative centre" failure mode described in the
paper.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.accounting.params import PrivacyParams
from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.grid import GridDomain
from repro.mechanisms.gaussian import gaussian_mechanism
from repro.quasiconcave.binary_search import noisy_binary_search
from repro.quasiconcave.quality import CallableQuality
from repro.utils.rng import RngLike, spawn_generators
from repro.utils.validation import check_integer, check_points


def _trimmed_mean(values: np.ndarray, keep_fraction: float) -> float:
    """Mean of the central ``keep_fraction`` of a 1-d value array."""
    ordered = np.sort(values)
    n = ordered.size
    keep = max(1, int(round(keep_fraction * n)))
    start = (n - keep) // 2
    return float(ordered[start:start + keep].mean())


def private_aggregation_cluster(points, target: int, params: PrivacyParams,
                                domain: Optional[GridDomain] = None,
                                beta: float = 0.1, keep_fraction: float = 0.51,
                                rng: RngLike = None) -> OneClusterResult:
    """NRS07-style baseline: private trimmed-mean centre + private radius.

    Parameters
    ----------
    points:
        ``(n, d)`` input points.
    target:
        Desired cluster size ``t`` (the baseline implicitly assumes
        ``t >= keep_fraction * n``; it still runs otherwise, demonstrating its
        failure mode).
    params:
        Privacy budget, split evenly between the centre and the radius.
    domain:
        Optional grid domain (used for the coordinate sensitivity bound and
        the candidate radii); inferred from the data's bounding box otherwise.
    beta:
        Failure probability (reporting only).
    keep_fraction:
        The trimming level (0.51 in [16]).
    rng:
        Seed or generator.
    """
    points = check_points(points)
    target = check_integer(target, "target", minimum=1)
    n, d = points.shape
    if domain is None:
        low = float(np.floor(points.min()))
        high = float(np.ceil(points.max()))
        domain = GridDomain(dimension=d, side=1025, low=low, high=max(high, low + 1.0))
    center_rng, radius_rng = spawn_generators(rng, 2)
    half = params.part(0.5)

    # Centre: coordinate-wise trimmed mean.  Changing one database row moves
    # each coordinate's trimmed mean by at most axis_length / (keep * n), so
    # the L2-sensitivity of the centre vector is sqrt(d) times that.
    keep = max(1, int(round(keep_fraction * n)))
    exact_center = np.array([_trimmed_mean(points[:, axis], keep_fraction)
                             for axis in range(d)])
    sensitivity = math.sqrt(d) * domain.axis_length / keep
    center = np.asarray(
        gaussian_mechanism(exact_center, sensitivity, half, rng=center_rng),
        dtype=float,
    )

    # Radius: noisy binary search over candidate radii for the smallest radius
    # capturing `target` points around the released centre.  The count around
    # a *fixed, already-released* centre has sensitivity 1.
    candidate_radii = domain.candidate_radii()
    distances = np.linalg.norm(points - center[None, :], axis=1)

    def batch_counts(indices: np.ndarray) -> np.ndarray:
        radii = candidate_radii[np.asarray(indices, dtype=np.int64)]
        return np.array([float(np.count_nonzero(distances <= radius)) for radius in radii])

    monotone = CallableQuality(
        function=lambda index: batch_counts(np.array([index]))[0],
        size=candidate_radii.shape[0],
        batch_function=batch_counts,
    )
    search = noisy_binary_search(monotone, threshold=float(target), params=half,
                                 sensitivity=1.0, rng=radius_rng)
    radius = float(candidate_radii[search.index])

    radius_result = GoodRadiusResult(radius=radius, gamma=0.0,
                                     score=float(np.count_nonzero(distances <= radius)),
                                     zero_cluster=False, method="private_aggregation")
    center_result = GoodCenterResult(center=center, radius_bound=radius, attempts=1,
                                     projected_dimension=d,
                                     captured_count=int(np.count_nonzero(distances <= radius)))
    return OneClusterResult(ball=Ball(center=center, radius=radius),
                            radius_result=radius_result,
                            center_result=center_result, target=target)


__all__ = ["private_aggregation_cluster"]
