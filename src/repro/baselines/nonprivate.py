"""Non-private reference solver for the 1-cluster problem.

Used as the ground truth experiments compare private solvers against: the
factor-2 approximation in general dimension (balls centred at input points),
and the exact sliding-window solution in one dimension.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import GoodCenterResult, GoodRadiusResult, OneClusterResult
from repro.geometry.balls import Ball
from repro.geometry.minimal_ball import smallest_ball_exact_1d, smallest_ball_two_approx
from repro.neighbors import BackendLike
from repro.utils.validation import check_integer, check_points


def nonprivate_one_cluster(points, target: int,
                           backend: BackendLike = None) -> OneClusterResult:
    """Solve the 1-cluster problem without privacy.

    In one dimension the result is exact; in higher dimensions it is the
    classical factor-2 approximation (smallest ball centred at an input
    point).  The result is wrapped in the same :class:`OneClusterResult`
    type as the private solvers so harness code can treat them uniformly.
    ``backend`` selects the neighbor backend answering the ``k``-th-nearest
    distance queries of the 2-approximation.
    """
    points = check_points(points)
    target = check_integer(target, "target", minimum=1)
    if target > points.shape[0]:
        raise ValueError("target cannot exceed the number of points")
    if points.shape[1] == 1:
        ball = smallest_ball_exact_1d(points[:, 0], target)
    else:
        ball = smallest_ball_two_approx(points, target, backend=backend)
    radius_result = GoodRadiusResult(radius=ball.radius, gamma=0.0,
                                     score=float(target), zero_cluster=ball.radius == 0.0,
                                     method="nonprivate")
    center_result = GoodCenterResult(center=np.asarray(ball.center, dtype=float),
                                     radius_bound=ball.radius, attempts=0,
                                     projected_dimension=points.shape[1],
                                     captured_count=ball.count(points))
    return OneClusterResult(ball=Ball(center=ball.center, radius=ball.radius),
                            radius_result=radius_result,
                            center_result=center_result, target=target)


__all__ = ["nonprivate_one_cluster"]
