"""Clustering-as-a-service: a long-lived, multi-tenant query server layer.

The library answers one question per call and tears everything down; this
package answers the deployment question — *how do many tenants share one
resident engine without sharing (or overspending) a privacy budget?* —
with three pieces:

* :class:`~repro.service.registry.DatasetRegistry` — datasets registered
  once, each with a resident warm
  :class:`~repro.neighbors.base.NeighborBackend`;
* :class:`~repro.accounting.budget.BudgetedLedger` (re-exported here for
  convenience) — per-tenant enforced ``(epsilon, delta)`` caps;
* :class:`~repro.service.service.ClusteringService` — the front door:
  bounded per-dataset FIFO queues, per-request
  :class:`~repro.service.jobs.JobHandle` lifecycle, and every private
  release *bitwise identical* to the same-seed direct library call.
"""

from repro.accounting.budget import BudgetedLedger, BudgetExhaustedError
from repro.service.jobs import JobHandle, JobStatus
from repro.service.registry import DatasetRegistry, RegisteredDataset
from repro.service.service import (
    DEFAULT_MAX_QUEUE,
    ClusteringService,
    ServiceSaturatedError,
)

__all__ = [
    "BudgetedLedger",
    "BudgetExhaustedError",
    "ClusteringService",
    "DEFAULT_MAX_QUEUE",
    "DatasetRegistry",
    "JobHandle",
    "JobStatus",
    "RegisteredDataset",
    "ServiceSaturatedError",
]
