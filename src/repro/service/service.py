"""The multi-tenant clustering service front door.

:class:`ClusteringService` composes the pieces this repo already has —
solvers (`good_radius`/`good_center`/`one_cluster`/`k_cluster`/
`outlier_ball`), pluggable :class:`~repro.neighbors.base.NeighborBackend`
strategies, and privacy accounting — into one long-lived object a server
process would embed:

* **Datasets are resident.**  :meth:`~ClusteringService.register_dataset`
  builds a backend once; every subsequent query reuses its warm caches and
  live pools (see :mod:`repro.service.registry`).
* **Budgets are enforced.**  Each tenant holds a
  :class:`~repro.accounting.budget.BudgetedLedger`; a query is debited
  *at admission*, atomically, and a query that would exceed the tenant's
  cap raises :class:`~repro.accounting.budget.BudgetExhaustedError` at
  submit time — before it ever touches the data.
* **Requests are queued.**  Each dataset has one bounded FIFO queue and
  one executor thread; a submit returns a
  :class:`~repro.service.jobs.JobHandle` (``queued → running →
  done | failed``).  When the queue is full the admission charge is rolled
  back (the query provably never ran) and
  :class:`ServiceSaturatedError` is raised.

Why one executor thread per dataset
-----------------------------------
Backend instances are deliberately *not* thread-safe (truncated-distance
caches, speculation state, view caches, pool counters — all unlocked hot
paths), so the service serialises queries per dataset and gets its
concurrency from two other places: distinct datasets execute on distinct
threads, and a single query already fans out across the backend's own
worker pool (or node cluster).  Serial-per-dataset execution is also what
makes the parity guarantee trivial to state: a release produced through the
service is *bitwise identical* to the same-seed direct library call,
because it IS the same call — same points object, same backend instance,
same RNG consumption, with nothing else interleaved on that backend.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, Optional

from repro.accounting import BudgetedLedger, PrivacyParams
from repro.clustering import k_cluster, outlier_ball
from repro.core import good_center, good_radius, one_cluster
from repro.core.config import OneClusterConfig
from repro.neighbors import BackendLike
from repro.service.jobs import JobHandle
from repro.service.registry import DatasetRegistry, RegisteredDataset

#: Default bound on each dataset's request queue.
DEFAULT_MAX_QUEUE = 32

#: Query kinds → solver callables.  Module-level (not closed over) so the
#: test suite can substitute a blocking solver to pin queue-saturation
#: behaviour without monkeypatching service internals.
_SOLVERS: Dict[str, Callable[..., Any]] = {
    "good_radius": good_radius,
    "good_center": good_center,
    "one_cluster": one_cluster,
    "k_cluster": k_cluster,
    "outlier_screen": outlier_ball,
}

#: Kinds that re-index shrinking point sets internally and therefore need a
#: rebuild *spec* (name/class + options), not the resident instance.
_SPEC_ONLY_KINDS = frozenset({"k_cluster"})


class ServiceSaturatedError(RuntimeError):
    """A request was refused because the dataset's queue was full.

    The admission charge is rolled back before this is raised: a saturated
    queue costs the tenant nothing.
    """

    def __init__(self, dataset: str, depth: int) -> None:
        self.dataset = dataset
        self.depth = depth
        super().__init__(
            f"request queue for dataset {dataset!r} is full "
            f"({depth} pending); retry later or raise max_queue"
        )


class _WorkerStoppedError(RuntimeError):
    """A submit raced :meth:`_DatasetWorker.stop`: the dataset was
    unregistered (or the service closed) between the worker lookup and the
    enqueue.  Internal — the service translates it into the same ``KeyError``
    an up-front missing-dataset lookup raises, after rolling the admission
    charge back."""


class _DatasetWorker:
    """One bounded FIFO queue + one executor thread for one dataset."""

    _SENTINEL = None

    def __init__(self, name: str, max_queue: int) -> None:
        self.name = name
        self.queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self.executed = 0
        self.failed = 0
        # Guards `stopped` against `submit`: once stop() flips it, no new
        # job can land in the queue, so stop()'s drain is exhaustive — a job
        # enqueued after the drain would never run and its handle would
        # block its waiter forever.
        self._state_lock = threading.Lock()
        self.stopped = False
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"repro-service-{name}"
        )
        self._thread.start()

    def submit(self, job: JobHandle, thunk: Callable[[], Any]) -> None:
        """Enqueue without blocking.  ``queue.Full`` (queue saturated) and
        :class:`_WorkerStoppedError` (stop() already ran or is draining)
        propagate to the service, which rolls the admission charge back."""
        with self._state_lock:
            if self.stopped:
                raise _WorkerStoppedError(self.name)
            self.queue.put_nowait((job, thunk))

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is self._SENTINEL:
                break
            job, thunk = item
            job._mark_running()
            try:
                result = thunk()
            except BaseException as error:  # noqa: BLE001 - travels to caller
                self.failed += 1
                job._fail(error)
            else:
                self.executed += 1
                job._finish(result)

    def stop(self) -> None:
        """Stop after the in-flight query; fail anything still queued."""
        with self._state_lock:
            self.stopped = True
        # From here no submit can enqueue, so everything the drain below
        # sees is everything that will ever exist.
        self.queue.put(self._SENTINEL)
        self._thread.join()
        # Whatever is still queued ran after the sentinel was consumed —
        # never.  Fail those handles so their waiters wake up.
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                break
            if item is self._SENTINEL:
                continue
            job, _ = item
            job._fail(RuntimeError(
                f"dataset {self.name!r} was unregistered before job "
                f"{job.job_id} ran"
            ))


class ClusteringService:
    """Multi-tenant, budget-enforcing clustering-as-a-service front door.

    Parameters
    ----------
    max_queue:
        Bound on each dataset's pending-request queue (per dataset, not
        global).

    Examples
    --------
    >>> service = ClusteringService()
    >>> service.register_dataset("demo", points, backend="dense")
    >>> service.create_tenant("alice", PrivacyParams(2.0, 1e-6))
    >>> job = service.good_radius("alice", "demo", target=900,
    ...                           params=PrivacyParams(0.5, 1e-7), rng=7)
    >>> job.result().radius
    """

    def __init__(self, max_queue: int = DEFAULT_MAX_QUEUE) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self._max_queue = int(max_queue)
        self._registry = DatasetRegistry()
        self._workers: Dict[str, _DatasetWorker] = {}
        self._tenants: Dict[str, BudgetedLedger] = {}
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Datasets
    # ------------------------------------------------------------------ #
    def register_dataset(self, name: str, points,
                         backend: BackendLike = None,
                         options: Optional[dict] = None) -> RegisteredDataset:
        """Make a dataset resident: validate, build/adopt its backend, and
        start its executor.  See :meth:`DatasetRegistry.register`."""
        self._check_open()
        entry = self._registry.register(name, points, backend=backend,
                                        options=options)
        with self._lock:
            # Re-check under the lock close() sets _closed with: the early
            # _check_open is advisory, and losing the race here would leak
            # a live executor thread plus a backend close() never sees.
            lost_close_race = self._closed
            if not lost_close_race:
                self._workers[entry.name] = _DatasetWorker(entry.name,
                                                           self._max_queue)
        if lost_close_race:
            try:
                self._registry.unregister(entry.name)
            except KeyError:
                pass  # close()'s close_all() already dropped (and closed) it
            raise RuntimeError("the service is closed")
        return entry

    def unregister_dataset(self, name: str) -> None:
        """Stop the dataset's executor (failing still-queued jobs) and
        deterministically close its backend (if service-owned)."""
        with self._lock:
            worker = self._workers.pop(name, None)
        if worker is not None:
            worker.stop()
        self._registry.unregister(name)

    def datasets(self):
        """Sorted registered dataset names."""
        return self._registry.names()

    # ------------------------------------------------------------------ #
    # Tenants
    # ------------------------------------------------------------------ #
    def create_tenant(self, name: str, cap: PrivacyParams,
                      composition: str = "basic",
                      delta_prime: Optional[float] = None) -> BudgetedLedger:
        """Create a tenant with an enforced ``(epsilon, delta)`` budget.

        See :class:`~repro.accounting.budget.BudgetedLedger` for the
        composition/``delta_prime`` semantics.
        """
        self._check_open()
        name = str(name)
        if not name:
            raise ValueError("tenant name must be non-empty")
        ledger = BudgetedLedger(cap, composition=composition,
                                delta_prime=delta_prime, tenant=name)
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already exists")
            self._tenants[name] = ledger
        return ledger

    def tenant(self, name: str) -> BudgetedLedger:
        """The tenant's budget ledger (``KeyError`` when unknown)."""
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                known = sorted(self._tenants)
                raise KeyError(
                    f"no tenant named {name!r}; known: {known}"
                ) from None

    def tenants(self):
        """Sorted tenant names."""
        with self._lock:
            return sorted(self._tenants)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, tenant: str, dataset: str, kind: str,
               params: PrivacyParams, **kwargs) -> JobHandle:
        """Admit one query: charge the tenant's budget, enqueue, return a
        :class:`JobHandle`.

        The sequence is *validate → charge → enqueue*: anything wrong with
        the request (unknown tenant/dataset/kind, a k_cluster against an
        instance-registered dataset, bad kwargs) raises before the tenant
        is charged, and a full queue rolls the charge back — a tenant only
        ever pays for queries that will run.

        Parameters
        ----------
        tenant, dataset:
            Names previously passed to :meth:`create_tenant` /
            :meth:`register_dataset`.
        kind:
            One of ``good_radius``, ``good_center``, ``one_cluster``,
            ``k_cluster``, ``outlier_screen``.
        params:
            The query's total privacy cost — forwarded to the solver AND
            debited from the tenant's budget.
        **kwargs:
            Solver keyword arguments (``target=``, ``radius=``, ``rng=``,
            ``config=``, ...).  ``points``, ``backend``, and
            ``params`` are supplied by the service and rejected here.
        """
        self._check_open()
        ledger = self.tenant(tenant)
        entry = self._registry.get(dataset)
        with self._lock:
            worker = self._workers.get(dataset)
        if worker is None:  # unregister raced the lookup
            raise KeyError(f"no dataset registered as {dataset!r}")
        thunk = self._build_thunk(entry, kind, params, kwargs)
        receipt = ledger.charge(f"service:{kind}", params,
                                note=f"dataset={dataset}")
        job = JobHandle(tenant=tenant, dataset=dataset, kind=kind)
        try:
            worker.submit(job, thunk)
        except queue.Full:
            # Roll back by receipt: another thread may have charged this
            # tenant between our charge and here, so "pop the latest" could
            # refund a *different* (possibly larger) spend and let the
            # ledger under-record a query that actually runs.
            ledger.rollback(receipt)
            raise ServiceSaturatedError(dataset, self._max_queue) from None
        except _WorkerStoppedError:
            # unregister/close raced the enqueue; the query never ran.
            ledger.rollback(receipt)
            raise KeyError(f"no dataset registered as {dataset!r}") from None
        return job

    def _build_thunk(self, entry: RegisteredDataset, kind: str,
                     params: PrivacyParams, kwargs: dict) -> Callable[[], Any]:
        """Bind a solver call to the resident dataset.

        Instance-path kinds run against ``entry.backend`` directly (the
        solvers never close caller-supplied instances, so the backend stays
        warm across queries).  Spec-only kinds (``k_cluster`` re-indexes a
        shrinking point set every iteration) are routed through
        :meth:`OneClusterConfig.with_neighbors` instead, which requires the
        dataset to have been registered from a spec, not an instance.
        """
        if kind not in _SOLVERS:
            raise ValueError(
                f"unknown query kind {kind!r}; expected one of "
                f"{sorted(_SOLVERS)}"
            )
        for reserved in ("points", "backend", "params"):
            if reserved in kwargs:
                raise TypeError(
                    f"{reserved!r} is supplied by the service; it cannot be "
                    "overridden per query"
                )
        solver = _SOLVERS[kind]
        kwargs = dict(kwargs)
        if kind in _SPEC_ONLY_KINDS:
            spec, spec_options = entry.spec, dict(entry.spec_options or {})
            if entry.owns_backend is False:
                raise ValueError(
                    f"{kind} re-indexes its points every iteration, so it "
                    f"needs a backend spec; dataset {entry.name!r} was "
                    "registered from an already-built instance — register "
                    "it from a name/class to use this query"
                )
            if isinstance(spec, str) or spec is None:
                config = kwargs.pop("config", None) or OneClusterConfig()
                kwargs["config"] = config.with_neighbors(
                    spec or "auto", spec_options
                )
                backend_arg: BackendLike = None
            elif not spec_options:
                backend_arg = spec  # a class: k_cluster accepts it directly
            else:
                raise ValueError(
                    f"dataset {entry.name!r} was registered from a backend "
                    "class with options, which k_cluster cannot rebuild; "
                    "register it by strategy name instead"
                )
            return lambda: solver(entry.points, params=params,
                                  backend=backend_arg, **kwargs)
        return lambda: solver(entry.points, params=params,
                              backend=entry.backend, **kwargs)

    # -- named wrappers ------------------------------------------------- #
    def good_radius(self, tenant: str, dataset: str, *, target: int,
                    params: PrivacyParams, **kwargs) -> JobHandle:
        """Submit a GoodRadius query (Algorithm 1)."""
        return self.submit(tenant, dataset, "good_radius", params,
                           target=target, **kwargs)

    def good_center(self, tenant: str, dataset: str, *, radius: float,
                    target: int, params: PrivacyParams,
                    **kwargs) -> JobHandle:
        """Submit a GoodCenter query (Algorithm 2)."""
        return self.submit(tenant, dataset, "good_center", params,
                           radius=radius, target=target, **kwargs)

    def one_cluster(self, tenant: str, dataset: str, *, target: int,
                    params: PrivacyParams, **kwargs) -> JobHandle:
        """Submit a full 1-cluster query (radius + centre)."""
        return self.submit(tenant, dataset, "one_cluster", params,
                           target=target, **kwargs)

    def k_cluster(self, tenant: str, dataset: str, *, k: int,
                  params: PrivacyParams, **kwargs) -> JobHandle:
        """Submit a k-ball covering query (iterated 1-cluster)."""
        return self.submit(tenant, dataset, "k_cluster", params,
                           k=k, **kwargs)

    def outlier_screen(self, tenant: str, dataset: str, *,
                       params: PrivacyParams, **kwargs) -> JobHandle:
        """Submit an outlier-screening query (1-cluster at n*fraction)."""
        return self.submit(tenant, dataset, "outlier_screen", params,
                           **kwargs)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def service_stats(self) -> dict:
        """One JSON-friendly snapshot: per-dataset queue depth + engine
        pool counters, per-tenant spend/remaining/refusals."""
        datasets = {}
        for name in self._registry.names():
            try:
                entry = self._registry.get(name)
            except KeyError:  # unregistered between names() and get()
                continue
            with self._lock:
                worker = self._workers.get(name)
            info = entry.describe()
            info["queue_depth"] = 0 if worker is None else worker.queue.qsize()
            info["executed"] = 0 if worker is None else worker.executed
            info["failed"] = 0 if worker is None else worker.failed
            pool_stats = getattr(entry.backend, "pool_stats", None)
            info["pool"] = None if pool_stats is None else pool_stats()
            datasets[name] = info
        with self._lock:
            tenants = dict(self._tenants)
        return {
            "datasets": datasets,
            "tenants": {name: ledger.stats()
                        for name, ledger in sorted(tenants.items())},
        }

    def close(self) -> None:
        """Stop every executor and close every service-owned backend
        (idempotent).  In-flight queries finish; queued ones fail."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = list(self._workers.values()), {}
        for worker in workers:
            worker.stop()
        self._registry.close_all()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the service is closed")

    def __enter__(self) -> "ClusteringService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ClusteringService", "ServiceSaturatedError", "DEFAULT_MAX_QUEUE"]
