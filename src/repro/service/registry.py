"""Resident datasets: register once, query many times.

A library caller pays backend construction (sharding, worker-pool spawn,
node dials) on every ``one_cluster`` call; a *service* must not — its whole
point is that the dataset outlives the request.  :class:`DatasetRegistry`
keeps, per registered name, one :class:`RegisteredDataset`: the validated
points, a resident :class:`~repro.neighbors.base.NeighborBackend` (warm
caches, live pools), and the *spec* it was built from so queries that must
re-index internally (``k_cluster`` shrinks its point set per iteration) can
rebuild compatible backends via
:meth:`~repro.core.config.OneClusterConfig.with_neighbors`.

Ownership is deterministic: a backend the registry *built* (spec path) is
closed by :meth:`DatasetRegistry.unregister` / :meth:`close_all`; an
already-built instance handed to :meth:`register` stays the caller's to
close — the same contract ``one_cluster`` itself follows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.neighbors import BackendLike, NeighborBackend, resolve_backend
from repro.utils.validation import check_points


def _close_backend(backend: NeighborBackend) -> None:
    """Close a backend if its strategy has resources to release (only the
    sharded/distributed strategies define ``close``)."""
    close = getattr(backend, "close", None)
    if close is not None:
        close()


@dataclass
class RegisteredDataset:
    """One resident dataset: points + warm backend + rebuild spec.

    Attributes
    ----------
    name:
        The registry key.
    points:
        The validated ``(n, d)`` float array the backend indexes.
    backend:
        The resident :class:`NeighborBackend` answering this dataset's
        queries.
    spec, spec_options:
        The name/class the backend was built from plus its constructor
        options, or ``None`` when the caller supplied an instance (then no
        rebuild recipe exists).
    owns_backend:
        Whether the registry built (and therefore closes) the backend.
    """

    name: str
    points: np.ndarray
    backend: NeighborBackend
    spec: Optional[BackendLike]
    spec_options: Optional[dict]
    owns_backend: bool
    lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def describe(self) -> dict:
        """A JSON-friendly snapshot (no live pool stats — the service layer
        merges those in, under the dataset's execution lock)."""
        return {
            "name": self.name,
            "num_points": self.num_points,
            "dimension": self.dimension,
            "backend": type(self.backend).__name__,
            "owns_backend": self.owns_backend,
        }


class DatasetRegistry:
    """Thread-safe name → :class:`RegisteredDataset` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._datasets: Dict[str, RegisteredDataset] = {}

    def register(self, name: str, points, backend: BackendLike = None,
                 options: Optional[dict] = None) -> RegisteredDataset:
        """Validate ``points``, build (or adopt) a backend, make both
        resident under ``name``.

        Parameters
        ----------
        name:
            Registry key; must not already be registered.
        points:
            The ``(n, d)`` dataset.
        backend:
            Anything :func:`~repro.neighbors.resolve_backend` accepts.  A
            name/class is a *spec*: the registry builds, owns, and closes
            the backend, and the spec is kept for queries that re-index
            internally.  An instance is adopted as-is (caller keeps
            ownership; ``k_cluster`` through the service is then
            unavailable for this dataset).
        options:
            Constructor options for the spec path (e.g.
            ``{"num_workers": 2}``); rejected with an instance, exactly as
            in :func:`resolve_backend`.
        """
        name = str(name)
        if not name:
            raise ValueError("dataset name must be non-empty")
        points = check_points(points)
        is_instance = isinstance(backend, NeighborBackend)
        resolved = resolve_backend(points, backend, options=options)
        # Index the exact array the backend indexed: an adopted instance
        # may hold its own (equal) copy, and release parity demands the
        # solver and the backend see the same bytes AND object.
        entry = RegisteredDataset(
            name=name,
            points=resolved.points,
            backend=resolved,
            spec=None if is_instance else backend,
            spec_options=None if is_instance else dict(options or {}),
            owns_backend=not is_instance,
        )
        with self._lock:
            if name in self._datasets:
                if entry.owns_backend:
                    _close_backend(resolved)
                raise ValueError(f"dataset {name!r} is already registered")
            self._datasets[name] = entry
        return entry

    def get(self, name: str) -> RegisteredDataset:
        """The entry for ``name`` (``KeyError`` with the known names
        otherwise)."""
        with self._lock:
            try:
                return self._datasets[name]
            except KeyError:
                known = sorted(self._datasets)
                raise KeyError(
                    f"no dataset registered as {name!r}; known: {known}"
                ) from None

    def names(self) -> List[str]:
        """Sorted registered names (a snapshot)."""
        with self._lock:
            return sorted(self._datasets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def unregister(self, name: str) -> None:
        """Drop ``name`` and deterministically close its backend (only if
        the registry built it)."""
        with self._lock:
            entry = self._datasets.pop(name, None)
        if entry is None:
            raise KeyError(f"no dataset registered as {name!r}")
        if entry.owns_backend:
            _close_backend(entry.backend)

    def close_all(self) -> None:
        """Unregister everything, closing every registry-owned backend
        (idempotent)."""
        with self._lock:
            entries, self._datasets = list(self._datasets.values()), {}
        for entry in entries:
            if entry.owns_backend:
                _close_backend(entry.backend)


__all__ = ["DatasetRegistry", "RegisteredDataset"]
