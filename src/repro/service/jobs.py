"""Request job handles: the progress half of the orchestrator/job split.

Every admitted service request becomes one :class:`JobHandle` that moves
through ``queued → running → done | failed`` (:class:`JobStatus`).  The
handle is the *only* object the submitting tenant holds while the request
sits in a dataset's FIFO queue and while the executor thread runs it, so it
carries everything a caller (or a stats page) wants to know: identity
(job id, tenant, dataset, query kind), lifecycle timestamps, and finally
the solver's result or its exception.  The service mutates the handle from
its executor threads; callers only read (and block on
:meth:`JobHandle.result`), so the handle synchronises on one internal lock
plus a completion event.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from typing import Any, Optional


class JobStatus(enum.Enum):
    """Lifecycle of a service request."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: Monotonic job ids, unique per process (not per service: two services in
#: one process never hand out colliding ids, which keeps logs unambiguous).
_JOB_IDS = itertools.count(1)


class JobHandle:
    """Handle for one admitted request.

    Attributes
    ----------
    job_id:
        Process-unique integer id.
    tenant, dataset, kind:
        The ``(who, what, which query)`` identity of the request.
    """

    def __init__(self, tenant: str, dataset: str, kind: str) -> None:
        self.job_id = next(_JOB_IDS)
        self.tenant = tenant
        self.dataset = dataset
        self.kind = kind
        self._lock = threading.Lock()
        self._done_event = threading.Event()
        self._status = JobStatus.QUEUED
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Caller-facing reads
    # ------------------------------------------------------------------ #
    @property
    def status(self) -> JobStatus:
        """The current lifecycle state."""
        with self._lock:
            return self._status

    def done(self) -> bool:
        """Whether the job reached ``DONE`` or ``FAILED``."""
        return self._done_event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job completes (either way); returns whether it
        did within ``timeout``."""
        return self._done_event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> Any:
        """The solver's return value.

        Blocks until the job completes.  A ``FAILED`` job re-raises the
        executor-side exception here, in the caller's thread — exactly like
        :meth:`concurrent.futures.Future.result`.

        Parameters
        ----------
        timeout:
            Seconds to wait; ``None`` waits forever.  ``TimeoutError`` is
            raised when the job is still queued/running at expiry.
        """
        if not self._done_event.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} ({self.kind} on {self.dataset!r}) not "
                f"done within {timeout}s"
            )
        with self._lock:
            if self._error is not None:
                raise self._error
            return self._result

    def describe(self) -> dict:
        """A JSON-friendly snapshot for stats pages."""
        with self._lock:
            status = self._status
            error = self._error
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "dataset": self.dataset,
            "kind": self.kind,
            "status": status.value,
            "error": None if error is None else repr(error),
        }

    # ------------------------------------------------------------------ #
    # Service-side transitions (one executor thread per dataset, so each
    # handle sees its transitions in order)
    # ------------------------------------------------------------------ #
    def _mark_running(self) -> None:
        with self._lock:
            self._status = JobStatus.RUNNING
            self.started_at = time.monotonic()

    def _finish(self, result: Any) -> None:
        with self._lock:
            self._status = JobStatus.DONE
            self._result = result
            self.finished_at = time.monotonic()
        self._done_event.set()

    def _fail(self, error: BaseException) -> None:
        with self._lock:
            self._status = JobStatus.FAILED
            self._error = error
            self.finished_at = time.monotonic()
        self._done_event.set()

    def __repr__(self) -> str:
        return (f"JobHandle(id={self.job_id}, kind={self.kind!r}, "
                f"tenant={self.tenant!r}, dataset={self.dataset!r}, "
                f"status={self.status.value!r})")


__all__ = ["JobHandle", "JobStatus"]
