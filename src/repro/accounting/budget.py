"""Enforcing per-tenant privacy budgets.

The :class:`~repro.accounting.ledger.PrivacyLedger` is observational — it
records what was spent and leaves correctness to the algorithms.  A
long-lived multi-tenant service cannot work that way: a tenant's queries
arrive forever, so something must *refuse* the query that would push the
tenant's cumulative privacy loss past its contract.  :class:`BudgetedLedger`
is that something: a cap ``(epsilon, delta)`` over an internal
:class:`~repro.accounting.ledger.PrivacyLedger`, with an atomic
check-then-record :meth:`~BudgetedLedger.charge` that either admits the
spend or raises :class:`BudgetExhaustedError` — never half of each.

Composition rule
----------------
``composition="basic"`` (default) admits by the Theorem 2.1 sums — exact,
predictable, the right choice for few large queries.
``composition="advanced"`` additionally tries the Theorem 4.7 bound (with
the homogeneous max-epsilon pessimism documented on
:meth:`~repro.accounting.ledger.PrivacyLedger.total_advanced`): a charge is
admitted when **either** bound fits the cap, which is sound because both
bounds hold simultaneously — advanced composition lets a tenant of many
small queries run ~quadratically longer, while basic keeps the first few
queries from being penalised by the ``2 k eps^2`` term.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.accounting.composition import advanced_composition_epsilon
from repro.accounting.ledger import LedgerEntry, PrivacyLedger
from repro.accounting.params import PrivacyParams

#: Relative slack on the cap comparison, so a tenant whose charges are meant
#: to sum exactly to the cap (four eps/4 queries against eps) is not refused
#: its last query over one float ulp of the running sum.
CAP_RELATIVE_TOLERANCE = 1e-9


class BudgetExhaustedError(RuntimeError):
    """A charge was refused because it would exceed the tenant's budget cap.

    Attributes
    ----------
    tenant:
        The tenant whose budget was exhausted (``""`` for an anonymous
        ledger).
    requested:
        The :class:`~repro.accounting.params.PrivacyParams` of the refused
        charge.
    spent:
        The composed spend *before* the refused charge (``None`` when
        nothing was admitted yet).
    cap:
        The tenant's budget cap.
    """

    def __init__(self, tenant: str, requested: PrivacyParams,
                 spent: Optional[PrivacyParams], cap: PrivacyParams) -> None:
        self.tenant = tenant
        self.requested = requested
        self.spent = spent
        self.cap = cap
        spent_text = ("nothing spent yet" if spent is None else
                      f"spent ({spent.epsilon:g}, {spent.delta:g})")
        who = f"tenant {tenant!r}" if tenant else "this ledger"
        super().__init__(
            f"budget exhausted for {who}: requested "
            f"({requested.epsilon:g}, {requested.delta:g}) with {spent_text} "
            f"against cap ({cap.epsilon:g}, {cap.delta:g})"
        )


class BudgetedLedger:
    """A thread-safe enforcing budget: cap + observational ledger + refusal.

    Parameters
    ----------
    cap:
        The total ``(epsilon, delta)`` the tenant may ever spend.
    composition:
        ``"basic"`` (default) or ``"advanced"`` — see the module docstring.
    delta_prime:
        The advanced-composition slack; required (in ``(0, 1)``, and below
        ``cap.delta``) when ``composition="advanced"``, rejected otherwise.
    tenant:
        Optional tenant name, used only in error messages and stats.

    Notes
    -----
    A charge is debited at *admission*: once admitted it is never refunded
    on query failure (the mechanism may already have touched the data, so
    refunding would be unsound — the conservative reading every DP
    accountant takes).  The one exception is :meth:`rollback`, for a charge
    whose request provably never ran (e.g. the service's queue was full).
    """

    def __init__(self, cap: PrivacyParams, composition: str = "basic",
                 delta_prime: Optional[float] = None,
                 tenant: str = "") -> None:
        if not isinstance(cap, PrivacyParams):
            raise TypeError(
                f"cap must be a PrivacyParams, got {type(cap).__name__}"
            )
        if composition not in ("basic", "advanced"):
            raise ValueError(
                f"composition must be 'basic' or 'advanced', got "
                f"{composition!r}"
            )
        if composition == "advanced":
            if delta_prime is None:
                raise ValueError(
                    "composition='advanced' requires delta_prime (the "
                    "Theorem 4.7 slack, in (0, 1))"
                )
            if not (0 < delta_prime < 1):
                raise ValueError(
                    f"delta_prime must lie in (0,1), got {delta_prime}"
                )
            if delta_prime >= cap.delta:
                raise ValueError(
                    f"delta_prime ({delta_prime:g}) must be below the delta "
                    f"cap ({cap.delta:g}); the advanced bound's delta is "
                    "sum(deltas) + delta_prime, so no charge could ever fit"
                )
        elif delta_prime is not None:
            raise ValueError(
                "delta_prime only applies to composition='advanced'"
            )
        self._cap = cap
        self._composition = composition
        self._delta_prime = delta_prime
        self._tenant = str(tenant)
        self._ledger = PrivacyLedger()
        self._refused = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def cap(self) -> PrivacyParams:
        """The budget cap."""
        return self._cap

    @property
    def tenant(self) -> str:
        """The tenant name ("" when anonymous)."""
        return self._tenant

    @property
    def composition(self) -> str:
        """The admission rule ("basic" or "advanced")."""
        return self._composition

    @property
    def ledger(self) -> PrivacyLedger:
        """The underlying observational ledger (admitted charges only)."""
        return self._ledger

    def __len__(self) -> int:
        return len(self._ledger)

    # ------------------------------------------------------------------ #
    # Composition arithmetic
    # ------------------------------------------------------------------ #
    def _bounds(self, parts) -> list:
        """Every simultaneously-valid composed bound for the given spends:
        the basic sums always, plus the Theorem 4.7 bound under the advanced
        rule.  Admission and reporting both choose *among* these — neither
        may pre-select one bound before checking the cap, because the bounds
        trade epsilon against delta (advanced shrinks epsilon but adds
        ``delta_prime`` to delta)."""
        parts = list(parts)
        if not parts:
            return []
        delta_sum = sum(p.delta for p in parts)
        basic = PrivacyParams(sum(p.epsilon for p in parts),
                              min(delta_sum, 1 - 1e-15))
        if self._composition == "basic":
            return [basic]
        k = len(parts)
        step = max(p.epsilon for p in parts)
        advanced_epsilon = advanced_composition_epsilon(step, k,
                                                        self._delta_prime)
        advanced = PrivacyParams(advanced_epsilon,
                                 min(delta_sum + self._delta_prime, 1 - 1e-15))
        return [basic, advanced]

    def _compose(self, parts) -> Optional[PrivacyParams]:
        """The bound *reported* for the given spends: the smallest-epsilon
        bound among those that fit the cap, else the smallest-epsilon bound
        overall.  Preferring a fitting bound keeps ``spent()`` inside the
        cap whenever any valid reading of the ledger is."""
        bounds = self._bounds(parts)
        if not bounds:
            return None
        fitting = [b for b in bounds if self._fits(b)]
        return min(fitting or bounds, key=lambda b: (b.epsilon, b.delta))

    def _fits(self, total: PrivacyParams) -> bool:
        slack = 1.0 + CAP_RELATIVE_TOLERANCE
        return (total.epsilon <= self._cap.epsilon * slack
                and total.delta <= self._cap.delta * slack)

    def _admits(self, parts) -> bool:
        """Whether the given spends fit the cap under *any* valid bound."""
        return any(self._fits(bound) for bound in self._bounds(parts))

    # ------------------------------------------------------------------ #
    # The enforcing API
    # ------------------------------------------------------------------ #
    def spent(self) -> Optional[PrivacyParams]:
        """The composed spend of all admitted charges (``None`` when no
        charge was admitted yet)."""
        with self._lock:
            return self._compose(e.params for e in self._ledger.entries)

    def remaining_epsilon(self) -> float:
        """The epsilon still admissible under the cap (never negative)."""
        spent = self.spent()
        used = 0.0 if spent is None else spent.epsilon
        return max(0.0, self._cap.epsilon - used)

    def remaining_delta(self) -> float:
        """The delta still admissible under the cap (never negative)."""
        spent = self.spent()
        used = 0.0 if spent is None else spent.delta
        return max(0.0, self._cap.delta - used)

    def can_charge(self, params: PrivacyParams) -> bool:
        """Whether :meth:`charge` would currently admit ``params`` (racy by
        nature — only :meth:`charge` itself is an atomic admission)."""
        with self._lock:
            return self._admits(
                [e.params for e in self._ledger.entries] + [params]
            )

    def charge(self, mechanism: str, params: PrivacyParams,
               note: str = "") -> LedgerEntry:
        """Atomically admit-and-record one spend, or refuse it.

        Composes the would-be total over the admitted entries plus
        ``params``; if *either* valid bound fits the cap the entry is
        recorded and returned (the caller's receipt for :meth:`rollback`),
        otherwise nothing is recorded and :class:`BudgetExhaustedError` is
        raised.  The check and the record happen under one lock, so
        concurrent tenant threads can never jointly overshoot the cap.
        """
        if not isinstance(params, PrivacyParams):
            raise TypeError(
                f"params must be a PrivacyParams, got {type(params).__name__}"
            )
        with self._lock:
            prior = [e.params for e in self._ledger.entries]
            if not self._admits(prior + [params]):
                self._refused += 1
                raise BudgetExhaustedError(self._tenant, params,
                                           self._compose(prior), self._cap)
            return self._ledger.record(mechanism, params, note=note)

    def rollback(self, entry: Optional[LedgerEntry] = None) -> None:
        """Refund one admitted charge.

        Only for a charge whose query provably never ran — the service uses
        it when admission succeeded but the bounded request queue refused
        the enqueue, so no mechanism ever saw the data.

        Parameters
        ----------
        entry:
            The receipt :meth:`charge` returned for the charge to refund.
            With a receipt the refund targets exactly that entry, which is
            the only correct form under concurrency: two threads that each
            charge and then roll back must each refund their *own* spend,
            never a neighbour's larger one (which would under-record a
            query that actually runs).  Without a receipt the most recently
            admitted charge is popped — acceptable only when the caller
            knows no other thread charged in between.
        """
        with self._lock:
            if entry is None:
                self._ledger.pop()
            else:
                self._ledger.remove(entry)

    def stats(self) -> dict:
        """Spend / remaining / cap / counters, as one JSON-friendly dict."""
        with self._lock:
            entries = self._ledger.entries
            spent = self._compose(e.params for e in entries)
            refused = self._refused
        return {
            "tenant": self._tenant,
            "composition": self._composition,
            "cap": {"epsilon": self._cap.epsilon, "delta": self._cap.delta},
            "spent": (None if spent is None else
                      {"epsilon": spent.epsilon, "delta": spent.delta}),
            "remaining": {
                "epsilon": max(0.0, self._cap.epsilon
                               - (0.0 if spent is None else spent.epsilon)),
                "delta": max(0.0, self._cap.delta
                             - (0.0 if spent is None else spent.delta)),
            },
            "queries": len(entries),
            "refused": refused,
        }


__all__ = ["BudgetExhaustedError", "BudgetedLedger", "CAP_RELATIVE_TOLERANCE"]
