"""A privacy-spend ledger.

Composite algorithms (GoodRadius, GoodCenter, SA, ...) optionally record every
sub-mechanism invocation into a :class:`PrivacyLedger`.  Tests assert that the
recorded total never exceeds the budget handed to the top-level algorithm,
which guards against accounting regressions when the implementation changes.

The ledger is thread-safe: the multi-tenant service layer
(:mod:`repro.service`) records spends from its per-dataset executor threads
while stats readers total them from other threads, so ``record`` /
``total_*`` / ``clear`` synchronise on an internal lock and every read
(``entries``, :meth:`PrivacyLedger.mechanisms`) returns a *snapshot* — a
fresh list that later recordings never mutate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.accounting.composition import advanced_composition_epsilon, basic_composition
from repro.accounting.params import PrivacyParams


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded privacy spend."""

    mechanism: str
    params: PrivacyParams
    note: str = ""


class PrivacyLedger:
    """Accumulates privacy spends from sub-mechanisms.

    The ledger is purely observational: it does not enforce a cap (the
    algorithms themselves split budgets correctly), but it exposes the basic-
    composition total so callers and tests can verify the arithmetic.  The
    *enforcing* variant — a per-tenant cap with admission control — is
    :class:`repro.accounting.budget.BudgetedLedger`, which composes one of
    these.

    All methods are safe to call from multiple threads; reads return
    snapshots (see the module docstring).
    """

    def __init__(self, entries: Optional[Iterable[LedgerEntry]] = None) -> None:
        self._entries: List[LedgerEntry] = list(entries) if entries else []
        self._lock = threading.Lock()

    @property
    def entries(self) -> List[LedgerEntry]:
        """A snapshot of the recorded entries, in recording order.

        The returned list is a copy: mutating it never touches the ledger,
        and concurrent ``record`` calls never mutate it.
        """
        with self._lock:
            return list(self._entries)

    def record(self, mechanism: str, params: PrivacyParams, note: str = "") -> LedgerEntry:
        """Record one sub-mechanism invocation and return its entry (the
        caller's receipt, usable with :meth:`remove`)."""
        entry = LedgerEntry(mechanism=mechanism, params=params, note=note)
        with self._lock:
            self._entries.append(entry)
        return entry

    def pop(self) -> Optional[LedgerEntry]:
        """Remove and return the most recently recorded entry (``None`` when
        the ledger is empty).  Only meaningful when the caller knows no other
        thread recorded in between — concurrent rollers-back should use
        :meth:`remove` with the receipt from :meth:`record` instead."""
        with self._lock:
            return self._entries.pop() if self._entries else None

    def remove(self, entry: LedgerEntry) -> bool:
        """Remove exactly ``entry`` (matched by identity, not equality — two
        equal-valued charges are distinct spends) and report whether it was
        present.  This is the rollback primitive that stays correct under
        concurrency: it never touches an entry another thread recorded."""
        with self._lock:
            for index, candidate in enumerate(self._entries):
                if candidate is entry:
                    del self._entries[index]
                    return True
        return False

    def total_basic(self) -> Optional[PrivacyParams]:
        """The basic-composition total of all recorded spends."""
        entries = self.entries
        if not entries:
            return None
        return basic_composition(entry.params for entry in entries)

    def total_advanced(self, delta_prime: float) -> Optional[PrivacyParams]:
        """An advanced-composition total assuming *homogeneous* entries.

        Theorem 4.7 composes ``k`` copies of one ``(eps, delta)`` step.  This
        ledger's entries are generally heterogeneous, so the theorem is
        applied with the **maximum** per-entry epsilon standing in for every
        step — a valid but deliberately pessimistic bound: one large entry
        among ``k`` small ones is counted as if all ``k`` were large (the
        bound degrades quadratically in the outlier epsilon through the
        ``2 k eps^2`` term).  Use it for reporting; budget *splitting* should
        compose the actual per-step parameters instead.  The returned delta
        is the exact sum of the per-entry deltas plus ``delta_prime``.

        Parameters
        ----------
        delta_prime:
            The composition slack; must lie in ``(0, 1)`` (validated by
            :func:`~repro.accounting.composition.advanced_composition_epsilon`,
            which raises ``ValueError`` on bad inputs rather than returning
            NaN).
        """
        entries = self.entries
        if not entries:
            return None
        k = len(entries)
        step_epsilon = max(entry.params.epsilon for entry in entries)
        epsilon = advanced_composition_epsilon(step_epsilon, k, delta_prime)
        delta = sum(entry.params.delta for entry in entries) + delta_prime
        return PrivacyParams(epsilon, min(delta, 1 - 1e-15))

    def mechanisms(self) -> List[str]:
        """The names of all recorded mechanisms, in order (a snapshot)."""
        return [entry.mechanism for entry in self.entries]

    def clear(self) -> None:
        """Drop all recorded entries."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"PrivacyLedger(entries={len(self)})"


__all__ = ["PrivacyLedger", "LedgerEntry"]
