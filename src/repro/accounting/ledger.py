"""A privacy-spend ledger.

Composite algorithms (GoodRadius, GoodCenter, SA, ...) optionally record every
sub-mechanism invocation into a :class:`PrivacyLedger`.  Tests assert that the
recorded total never exceeds the budget handed to the top-level algorithm,
which guards against accounting regressions when the implementation changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.accounting.composition import advanced_composition_epsilon, basic_composition
from repro.accounting.params import PrivacyParams


@dataclass(frozen=True)
class LedgerEntry:
    """One recorded privacy spend."""

    mechanism: str
    params: PrivacyParams
    note: str = ""


@dataclass
class PrivacyLedger:
    """Accumulates privacy spends from sub-mechanisms.

    The ledger is purely observational: it does not enforce a cap (the
    algorithms themselves split budgets correctly), but it exposes the basic-
    composition total so callers and tests can verify the arithmetic.
    """

    entries: List[LedgerEntry] = field(default_factory=list)

    def record(self, mechanism: str, params: PrivacyParams, note: str = "") -> None:
        """Record one sub-mechanism invocation."""
        self.entries.append(LedgerEntry(mechanism=mechanism, params=params, note=note))

    def total_basic(self) -> Optional[PrivacyParams]:
        """The basic-composition total of all recorded spends."""
        if not self.entries:
            return None
        return basic_composition(entry.params for entry in self.entries)

    def total_advanced(self, delta_prime: float) -> Optional[PrivacyParams]:
        """A (loose) advanced-composition total assuming homogeneous entries.

        Uses the maximum per-entry epsilon as the homogeneous step epsilon.
        Intended for reporting, not for enforcing budgets.
        """
        if not self.entries:
            return None
        k = len(self.entries)
        step_epsilon = max(entry.params.epsilon for entry in self.entries)
        epsilon = advanced_composition_epsilon(step_epsilon, k, delta_prime)
        delta = sum(entry.params.delta for entry in self.entries) + delta_prime
        return PrivacyParams(epsilon, min(delta, 1 - 1e-15))

    def mechanisms(self) -> List[str]:
        """The names of all recorded mechanisms, in order."""
        return [entry.mechanism for entry in self.entries]

    def clear(self) -> None:
        """Drop all recorded entries."""
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


__all__ = ["PrivacyLedger", "LedgerEntry"]
