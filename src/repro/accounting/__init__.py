"""Privacy accounting: parameters, composition theorems, and ledgers.

Two ledgers live here: the observational
:class:`~repro.accounting.ledger.PrivacyLedger` (records spends, enforces
nothing) and the enforcing
:class:`~repro.accounting.budget.BudgetedLedger` (per-tenant cap with
atomic admission control — the service layer's budget substrate).
"""

from repro.accounting.params import PrivacyParams
from repro.accounting.composition import (
    basic_composition,
    advanced_composition,
    advanced_composition_epsilon,
    split_evenly,
    subsample_amplification,
)
from repro.accounting.ledger import PrivacyLedger, LedgerEntry
from repro.accounting.budget import BudgetedLedger, BudgetExhaustedError

__all__ = [
    "PrivacyParams",
    "basic_composition",
    "advanced_composition",
    "advanced_composition_epsilon",
    "split_evenly",
    "subsample_amplification",
    "PrivacyLedger",
    "LedgerEntry",
    "BudgetedLedger",
    "BudgetExhaustedError",
]
