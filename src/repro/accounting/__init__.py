"""Privacy accounting: parameters, composition theorems, and a spend ledger."""

from repro.accounting.params import PrivacyParams
from repro.accounting.composition import (
    basic_composition,
    advanced_composition,
    advanced_composition_epsilon,
    split_evenly,
    subsample_amplification,
)
from repro.accounting.ledger import PrivacyLedger, LedgerEntry

__all__ = [
    "PrivacyParams",
    "basic_composition",
    "advanced_composition",
    "advanced_composition_epsilon",
    "split_evenly",
    "subsample_amplification",
    "PrivacyLedger",
    "LedgerEntry",
]
