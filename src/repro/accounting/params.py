"""Differential-privacy parameter container.

The whole library passes privacy budgets around as :class:`PrivacyParams`
values.  The class is a frozen dataclass so a budget can never be mutated in
place by a sub-mechanism; splitting always produces new objects, which the
:class:`~repro.accounting.ledger.PrivacyLedger` can track.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrivacyParams:
    """An ``(epsilon, delta)`` differential-privacy budget.

    Parameters
    ----------
    epsilon:
        The multiplicative privacy-loss bound; must be positive.
    delta:
        The additive failure probability; must lie in ``[0, 1)``.  ``0`` gives
        pure differential privacy.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if not (self.epsilon > 0):
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if not (0.0 <= self.delta < 1.0):
            raise ValueError(f"delta must lie in [0, 1), got {self.delta}")

    @property
    def is_pure(self) -> bool:
        """Whether this budget is pure (``delta == 0``) differential privacy."""
        return self.delta == 0.0

    def split(self, *fractions: float) -> tuple["PrivacyParams", ...]:
        """Split the budget into parts proportional to ``fractions``.

        The fractions must be positive and sum to at most 1 (within floating
        point slack).  Both ``epsilon`` and ``delta`` are split with the same
        fractions, matching the basic composition theorem (Theorem 2.1).

        Examples
        --------
        >>> PrivacyParams(1.0, 1e-6).split(0.5, 0.5)
        (PrivacyParams(epsilon=0.5, delta=5e-07), PrivacyParams(epsilon=0.5, delta=5e-07))
        """
        if not fractions:
            raise ValueError("at least one fraction is required")
        if any(fraction <= 0 for fraction in fractions):
            raise ValueError(f"fractions must be positive, got {fractions}")
        total = sum(fractions)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"fractions must sum to at most 1, got sum {total}"
            )
        return tuple(
            PrivacyParams(self.epsilon * fraction, self.delta * fraction)
            for fraction in fractions
        )

    def part(self, fraction: float) -> "PrivacyParams":
        """A single part of the budget: ``fraction`` of epsilon and delta."""
        if not (0 < fraction <= 1):
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        return PrivacyParams(self.epsilon * fraction, self.delta * fraction)

    def with_delta(self, delta: float) -> "PrivacyParams":
        """A copy of this budget with ``delta`` replaced."""
        return PrivacyParams(self.epsilon, delta)

    def scaled(self, factor: float) -> "PrivacyParams":
        """Scale both epsilon and delta by ``factor`` (used by amplification)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return PrivacyParams(self.epsilon * factor, min(self.delta * factor, 1 - 1e-15))


__all__ = ["PrivacyParams"]
