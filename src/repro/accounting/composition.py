"""Composition theorems for differential privacy.

Implements the two composition rules used in the paper:

* Theorem 2.1 (basic composition): ``k`` adaptive ``(eps, delta)``-DP
  interactions are ``(k*eps, k*delta)``-DP.
* Theorem 4.7 (advanced composition, Dwork–Rothblum–Vadhan 2010): the same
  interactions are ``(eps', k*delta + delta')``-DP with
  ``eps' = 2*k*eps**2 + eps*sqrt(2*k*ln(1/delta'))``.

plus the sub-sampling amplification lemma (Lemma 6.4) used by the sample-and-
aggregate framework.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.accounting.params import PrivacyParams


def basic_composition(parts: Iterable[PrivacyParams]) -> PrivacyParams:
    """Basic (sequential) composition, Theorem 2.1.

    Parameters
    ----------
    parts:
        The per-interaction budgets.

    Returns
    -------
    PrivacyParams
        The overall ``(sum eps_i, sum delta_i)`` guarantee.
    """
    parts = list(parts)
    if not parts:
        raise ValueError("at least one budget is required")
    epsilon = sum(part.epsilon for part in parts)
    delta = sum(part.delta for part in parts)
    return PrivacyParams(epsilon, min(delta, 1 - 1e-15))


def advanced_composition_epsilon(epsilon: float, k: int, delta_prime: float) -> float:
    """The epsilon obtained when composing ``k`` ``epsilon``-DP steps
    under advanced composition with slack ``delta_prime`` (Theorem 4.7).

    All inputs are validated eagerly — ``k < 1``, ``delta_prime`` outside
    ``(0, 1)``, a non-finite or negative ``epsilon`` — with descriptive
    ``ValueError``\\ s rather than letting ``log``/``sqrt`` return NaN or a
    negative "composed" value that would silently corrupt a downstream
    budget comparison (the enforcing
    :class:`~repro.accounting.budget.BudgetedLedger` admits queries by
    comparing this value against a cap).
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    if not (0 < delta_prime < 1):
        raise ValueError(f"delta_prime must lie in (0,1), got {delta_prime}")
    if not (math.isfinite(epsilon) and epsilon >= 0):
        raise ValueError(
            f"epsilon must be finite and non-negative, got {epsilon}"
        )
    return 2.0 * k * epsilon ** 2 + epsilon * math.sqrt(2.0 * k * math.log(1.0 / delta_prime))


def advanced_composition(part: PrivacyParams, k: int,
                         delta_prime: float) -> PrivacyParams:
    """Advanced composition of ``k`` copies of ``part`` (Theorem 4.7).

    Returns the overall ``(eps', k*delta + delta')`` guarantee where
    ``eps' = 2 k eps^2 + eps sqrt(2 k ln(1/delta'))``.
    """
    epsilon = advanced_composition_epsilon(part.epsilon, k, delta_prime)
    delta = k * part.delta + delta_prime
    return PrivacyParams(epsilon, min(delta, 1 - 1e-15))


def per_step_epsilon_for_advanced(total_epsilon: float, k: int,
                                  delta_prime: float) -> float:
    """Invert advanced composition: the per-step epsilon so that ``k`` steps
    compose to at most ``total_epsilon`` under Theorem 4.7.

    GoodCenter uses this for its ``d`` per-axis interval choices (step 9c of
    Algorithm 2): the paper runs each choice with privacy parameter
    ``eps / (10 sqrt(d ln(8/delta)))`` which is exactly this inversion up to
    constants.  We solve the quadratic ``2 k x^2 + x sqrt(2 k ln(1/delta'))
    = total_epsilon`` for ``x > 0``.
    """
    if total_epsilon <= 0:
        raise ValueError("total_epsilon must be positive")
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    a = 2.0 * k
    b = math.sqrt(2.0 * k * math.log(1.0 / delta_prime))
    c = -total_epsilon
    discriminant = b * b - 4.0 * a * c
    return (-b + math.sqrt(discriminant)) / (2.0 * a)


def split_evenly(budget: PrivacyParams, k: int) -> Sequence[PrivacyParams]:
    """Split ``budget`` into ``k`` equal parts under basic composition."""
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    return budget.split(*([1.0 / k] * k))


def subsample_amplification(part: PrivacyParams, sample_size: int,
                            population_size: int) -> PrivacyParams:
    """Privacy amplification by sub-sampling (Lemma 6.4, [KLNRS11, BNSV15]).

    If an algorithm ``A`` operating on databases of size ``m`` is
    ``(eps, delta)``-DP with ``eps <= 1``, then running ``A`` on ``m`` rows
    sub-sampled (with replacement) from a database of size ``n >= 2m`` is
    ``(6 eps m / n, exp(6 eps m / n) * 4 m / n * delta)``-DP.
    """
    if population_size < 2 * sample_size:
        raise ValueError(
            "population_size must be at least twice sample_size for the "
            f"amplification lemma; got {population_size} < 2*{sample_size}"
        )
    if part.epsilon > 1:
        raise ValueError(
            f"the amplification lemma requires epsilon <= 1, got {part.epsilon}"
        )
    ratio = sample_size / population_size
    epsilon = 6.0 * part.epsilon * ratio
    delta = math.exp(epsilon) * 4.0 * ratio * part.delta
    return PrivacyParams(epsilon, min(delta, 1 - 1e-15))


__all__ = [
    "basic_composition",
    "advanced_composition",
    "advanced_composition_epsilon",
    "per_step_epsilon_for_advanced",
    "split_evenly",
    "subsample_amplification",
]
