"""Private aggregators for the sample-and-aggregate framework.

The framework is agnostic to the aggregation step: any differentially private
function that maps the sub-sample outputs ``Y`` to a point "close to many of
them" will do.  The paper's contribution is that the 1-cluster algorithm is a
much better aggregator than the noisy average used by earlier systems (it only
needs a *minority* of the sub-sample outputs to be clustered, and it does not
pay a ``sqrt(d)`` factor in the radius); GUPT-style differentially private
averaging is the baseline we compare against in experiment E6.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.one_cluster import one_cluster
from repro.core.types import OneClusterResult
from repro.mechanisms.noisy_average import noisy_average
from repro.utils.rng import RngLike

# An aggregator maps (values, target, params, beta, rng, ledger) to a point
# (or None on failure) plus an optional underlying result object.
Aggregator = Callable[
    [np.ndarray, int, PrivacyParams, float, RngLike, Optional[PrivacyLedger]],
    Tuple[Optional[np.ndarray], Optional[OneClusterResult]],
]


def one_cluster_aggregator(config: Optional[OneClusterConfig] = None,
                           backend=None) -> Aggregator:
    """The paper's aggregator: run the 1-cluster solver on the sub-sample
    outputs and return the released centre.

    ``backend`` (a backend name or class, see
    :func:`~repro.neighbors.resolve_backend`) is forwarded to the 1-cluster
    solver, which resolves it against the sub-sample outputs ``Y``; instances
    cannot be forwarded because ``Y`` is a different dataset from the raw
    database.
    """

    def aggregate(values: np.ndarray, target: int, params: PrivacyParams,
                  beta: float, rng: RngLike,
                  ledger: Optional[PrivacyLedger]) -> Tuple[Optional[np.ndarray],
                                                            Optional[OneClusterResult]]:
        result = one_cluster(values, target, params, beta=beta, config=config,
                             rng=rng, ledger=ledger, backend=backend)
        if not result.found:
            return None, result
        return np.asarray(result.ball.center, dtype=float), result

    return aggregate


def noisy_average_aggregator(clip_radius: float,
                             center: Optional[np.ndarray] = None) -> Aggregator:
    """A GUPT-style baseline aggregator: clip to a ball and release the noisy
    average (Gaussian mechanism).

    Parameters
    ----------
    clip_radius:
        The radius of the clipping ball; the released average's noise scales
        with this radius, which is exactly the weakness the 1-cluster
        aggregator removes (it adapts to the true spread of the sub-sample
        outputs instead of a worst-case bound).
    center:
        Centre of the clipping ball (defaults to the origin).
    """
    if clip_radius <= 0:
        raise ValueError("clip_radius must be positive")

    def aggregate(values: np.ndarray, target: int, params: PrivacyParams,
                  beta: float, rng: RngLike,
                  ledger: Optional[PrivacyLedger]) -> Tuple[Optional[np.ndarray],
                                                            Optional[OneClusterResult]]:
        values = np.asarray(values, dtype=float)
        reference = np.zeros(values.shape[1]) if center is None else np.asarray(center, float)
        offsets = values - reference[None, :]
        norms = np.linalg.norm(offsets, axis=1, keepdims=True)
        scale = np.minimum(1.0, clip_radius / np.maximum(norms, 1e-12))
        clipped = reference[None, :] + offsets * scale
        result = noisy_average(clipped, diameter=2.0 * clip_radius, params=params,
                               center=reference, rng=rng)
        if ledger is not None:
            ledger.record("noisy_average", params, note="GUPT-style aggregation")
        if not result.found:
            return None, None
        return np.asarray(result.value, dtype=float), None

    return aggregate


__all__ = ["Aggregator", "one_cluster_aggregator", "noisy_average_aggregator"]
