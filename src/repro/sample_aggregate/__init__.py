"""Sample-and-aggregate framework (paper Section 6, Algorithm 4 SA)."""

from repro.sample_aggregate.framework import (
    sample_and_aggregate,
    plan_capable,
    StablePointResult,
    sa_minimum_database_size,
)
from repro.sample_aggregate.stability import empirical_stability, StabilityEstimate
from repro.sample_aggregate.aggregators import (
    one_cluster_aggregator,
    noisy_average_aggregator,
)
from repro.sample_aggregate.applications import (
    BlockMean,
    component_assignment,
    private_mean_estimator,
    private_median_estimator,
    private_gmm_center_estimator,
)

__all__ = [
    "sample_and_aggregate",
    "plan_capable",
    "StablePointResult",
    "sa_minimum_database_size",
    "BlockMean",
    "component_assignment",
    "empirical_stability",
    "StabilityEstimate",
    "one_cluster_aggregator",
    "noisy_average_aggregator",
    "private_mean_estimator",
    "private_median_estimator",
    "private_gmm_center_estimator",
]
