"""Ready-made sample-and-aggregate applications.

These wrap :func:`~repro.sample_aggregate.framework.sample_and_aggregate`
around standard non-private analyses — mirroring the applications the paper
cites for the framework (k-means / Gaussian-mixture estimation in [16],
statistical estimators in Smith 2011, GUPT-style averaging in [15]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import kernels
from repro.accounting.params import PrivacyParams
from repro.sample_aggregate.framework import StablePointResult, sample_and_aggregate
from repro.utils.exactsum import exact_column_sums
from repro.utils.rng import RngLike


class BlockMean:
    """Plan-capable block analysis: the exact column mean.

    ``__call__`` computes the block mean through
    :func:`~repro.utils.exactsum.exact_column_sums` (the correctly-rounded
    fixed-point column sum), and ``compile``/``resolve`` compute the *same*
    sum through one backend ``masked_sum`` plan query.  The masked sum is
    partition-independent by construction, so the two paths — and every
    backend at every shard count — produce bitwise-identical block means,
    which is what lets :func:`sample_and_aggregate` run all blocks as
    asynchronous plans without perturbing the release.
    """

    def __call__(self, block: np.ndarray) -> np.ndarray:
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block.reshape(-1, 1)
        return exact_column_sums(block) / float(block.shape[0])

    def compile(self, plan, view, rows) -> int:
        return plan.masked_sum(view, rows)

    def resolve(self, results, token: int, block_size: int) -> np.ndarray:
        return np.asarray(results[token], dtype=float) / float(block_size)


def private_mean_estimator(data, block_size: int, params: PrivacyParams,
                           beta: float = 0.1, rng: RngLike = None,
                           **kwargs) -> StablePointResult:
    """Private mean estimation: each block's analysis is its sample mean.

    The sample mean of an i.i.d. block concentrates around the population
    mean, so it is a highly stable analysis — the canonical demonstration of
    the framework.  The analysis is :class:`BlockMean`, so with a
    ``backend=`` the blocks evaluate as asynchronous query plans.  (The mean
    is the exact correctly-rounded one; this deliberately replaced
    ``block.mean(axis=0)``, whose pairwise summation is partition-dependent
    and could not match across backends.)
    """
    return sample_and_aggregate(data, BlockMean(), block_size, params,
                                beta=beta, rng=rng, **kwargs)


def private_median_estimator(data, block_size: int, params: PrivacyParams,
                             beta: float = 0.1, rng: RngLike = None,
                             **kwargs) -> StablePointResult:
    """Private coordinate-wise median estimation (Smith 2011 used d=1)."""

    def analysis(block: np.ndarray) -> np.ndarray:
        return np.median(np.asarray(block, dtype=float), axis=0)

    return sample_and_aggregate(data, analysis, block_size, params, beta=beta,
                                rng=rng, **kwargs)


def component_assignment(block: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-centre assignment of each block row, via the shared blocked
    distance kernel.

    Replaces the former dense ``(block, k, d)`` broadcast
    (``np.linalg.norm(block[:, None, :] - centers[None, :, :], axis=2)``)
    with one :func:`repro.kernels.squared_distance_slab` call — ``argmin``
    over squared distances selects the same centre as ``argmin`` over norms
    (the square root is monotone and ties keep first-index semantics), at a
    fraction of the memory traffic.
    """
    distances = kernels.squared_distance_slab(
        np.ascontiguousarray(block), np.ascontiguousarray(centers)
    )
    return np.argmin(distances, axis=1)


def private_gmm_center_estimator(data, block_size: int, params: PrivacyParams,
                                 num_components: int = 2, iterations: int = 10,
                                 beta: float = 0.1, rng: RngLike = None,
                                 **kwargs) -> StablePointResult:
    """Private estimation of the heaviest Gaussian-mixture component's mean.

    Each block runs a small Lloyd-style hard-EM with ``num_components``
    centres and reports the centre of the largest component.  When one
    component dominates the mixture, that centre is stable across blocks, so
    the 1-cluster aggregator recovers it; lighter components make the analysis
    output multi-modal, which is exactly the regime where a noisy-average
    aggregator fails but a minority-cluster aggregator still works.
    """
    if num_components < 1:
        raise ValueError("num_components must be at least 1")
    if iterations < 1:
        raise ValueError("iterations must be at least 1")

    def analysis(block: np.ndarray) -> np.ndarray:
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block.reshape(-1, 1)
        # Deterministic k-means++-free initialisation: spread quantile seeds
        # along the first principal direction so repeated blocks of the same
        # distribution initialise consistently (stability is the point here).
        centred = block - block.mean(axis=0, keepdims=True)
        if block.shape[1] > 1:
            _, _, vt = np.linalg.svd(centred, full_matrices=False)
            scores = centred @ vt[0]
        else:
            scores = centred[:, 0]
        quantiles = np.quantile(scores, np.linspace(0.1, 0.9, num_components))
        order = np.argsort(scores)
        centers = np.stack([
            block[order[np.searchsorted(scores[order], q)]] for q in quantiles
        ])
        for _ in range(iterations):
            assignment = component_assignment(block, centers)
            for component in range(num_components):
                members = block[assignment == component]
                if members.shape[0] > 0:
                    centers[component] = members.mean(axis=0)
        counts = np.bincount(assignment, minlength=num_components)
        return centers[int(np.argmax(counts))]

    return sample_and_aggregate(data, analysis, block_size, params, beta=beta,
                                rng=rng, **kwargs)


__all__ = [
    "BlockMean",
    "component_assignment",
    "private_mean_estimator",
    "private_median_estimator",
    "private_gmm_center_estimator",
]
