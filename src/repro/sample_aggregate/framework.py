"""Algorithm SA: sample and aggregate with a 1-cluster aggregator.

Paper Section 6: given a non-private analysis ``f`` mapping databases to
``X^d`` that is *stable* on the input database ``S`` — evaluating ``f`` on a
random sub-sample of size ``m`` lands within distance ``r`` of some point
``c`` with probability ``alpha`` (Definition 6.1) — Algorithm SA privately
identifies a point close to ``c``:

1. Sub-sample ``n/9`` rows i.i.d. from ``S`` and split them into
   ``k = n/(9m)`` blocks of size ``m``.
2. Evaluate ``f`` on every block, obtaining ``Y = {y_1, ..., y_k}``.
3. Run the 1-cluster algorithm on ``Y`` with target ``t = alpha k / 2`` and
   output the resulting centre.

Privacy follows because a neighbouring change of ``S`` changes at most one
block, hence at most one ``y_i``, and the aggregation step is DP; the i.i.d.
sub-sampling additionally amplifies the guarantee (Lemma 6.4).  Utility
(Theorem 6.3 / Lemma 6.7) combines a Chernoff bound, the 1-cluster guarantee
and the generalisation property of differential privacy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.accounting.composition import subsample_amplification
from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.types import OneClusterResult
from repro.neighbors import (
    BackendLike,
    NeighborBackend,
    QueryPlan,
    resolve_backend,
)
from repro.sample_aggregate.aggregators import Aggregator, one_cluster_aggregator
from repro.utils.rng import RngLike, as_generator, spawn_generators
from repro.utils.validation import check_integer, check_probability


def plan_capable(analysis) -> bool:
    """Whether an analysis can compile its block computation into query plans.

    A *plan-capable* analysis implements, in addition to ``__call__(block)``:

    * ``compile(plan, view, rows)`` — append the queries computing the
      analysis of the rows (a global-index multiset into the backend's
      dataset) to ``plan`` over the identity ``view``; return a token.
    * ``resolve(results, token, block_size)`` — map the executed plan's
      results back to the block's value, bitwise identical to
      ``__call__(database[rows])``.

    :func:`sample_and_aggregate` uses this to route every block through one
    asynchronous backend plan instead of materialising the sub-sample
    parent-side.
    """
    return hasattr(analysis, "compile") and hasattr(analysis, "resolve")


@dataclass(frozen=True)
class StablePointResult:
    """Outcome of a sample-and-aggregate run.

    Attributes
    ----------
    point:
        The released stable-point estimate (``None`` if aggregation failed).
    aggregate_values:
        Non-private diagnostic: the ``(k, d)`` sub-sample analysis outputs
        ``Y`` (only populated when ``collect_diagnostics=True``; never release
        these — they are not privatised).
    num_blocks:
        The number of sub-sample blocks ``k``.
    block_size:
        The sub-sample size ``m`` handed to the analysis.
    target:
        The cluster-size target ``t = alpha k / 2`` used by the aggregator.
    amplified_params:
        The overall privacy guarantee after sub-sampling amplification.
    cluster_result:
        The aggregator's underlying result object, when it exposes one.
    """

    point: Optional[np.ndarray]
    num_blocks: int
    block_size: int
    target: int
    amplified_params: PrivacyParams
    aggregate_values: Optional[np.ndarray] = None
    cluster_result: Optional[OneClusterResult] = None

    @property
    def found(self) -> bool:
        """Whether a point was released."""
        return self.point is not None


def sa_minimum_database_size(block_size: int, alpha: float, beta: float,
                             t_min: float) -> float:
    """The ``n`` requirement of Lemma 6.7:
    ``n >= m * O(t_min / alpha + log(12/beta) / alpha^2)``."""
    check_probability(alpha, "alpha")
    check_probability(beta, "beta")
    return block_size * (18.0 * t_min / alpha + 46646.0 / alpha ** 2 * math.log(12.0 / beta))


def sample_and_aggregate(database, analysis: Callable[[np.ndarray], np.ndarray],
                         block_size: int, params: PrivacyParams,
                         alpha: float = 0.5, beta: float = 0.1,
                         aggregator: Optional[Aggregator] = None,
                         subsample_fraction: float = 1.0 / 9.0,
                         config: Optional[OneClusterConfig] = None,
                         collect_diagnostics: bool = False,
                         backend: BackendLike = None,
                         backend_options: Optional[dict] = None,
                         rng: RngLike = None,
                         ledger: Optional[PrivacyLedger] = None) -> StablePointResult:
    """Privately estimate a stable point of ``analysis`` on ``database``.

    Parameters
    ----------
    database:
        The raw input database: any sequence or array of rows; rows are passed
        to ``analysis`` in blocks, so their type only needs to be what the
        analysis accepts (the default expects an ``(m, ...)`` ndarray slice).
    analysis:
        The non-private function ``f``; receives a block of ``block_size``
        rows and must return a point in ``R^d`` (a 1-d array or scalar).
    block_size:
        The stability parameter ``m``.
    params:
        The privacy budget of the *aggregation* step.  The returned
        :class:`StablePointResult` also reports the amplified overall
        guarantee obtained from sub-sampling (Lemma 6.4) when the fraction is
        small enough; the aggregation-step guarantee always holds.
    alpha:
        Stability probability: the caller asserts ``f`` is
        ``(m, r, alpha)``-stable for some radius ``r``.
    beta:
        Failure probability.
    aggregator:
        The private aggregation function applied to the sub-sample outputs;
        defaults to the paper's 1-cluster aggregator.
    subsample_fraction:
        The fraction of ``database`` sub-sampled before blocking (the paper
        uses 1/9).
    config:
        1-cluster configuration forwarded to the default aggregator.
    collect_diagnostics:
        When True, the (non-private) sub-sample outputs ``Y`` are attached to
        the result for inspection in experiments.
    backend:
        Optional neighbor backend for the block evaluations.  When the
        analysis is :func:`plan_capable` and the database is a 2-d float
        array, every block compiles into its own :class:`QueryPlan` over the
        resolved backend and *all plans are submitted up-front* — on a
        sharded/distributed backend the blocks are embarrassingly parallel,
        so every worker stays busy while the parent merely merges — and the
        block values (hence the release) are bitwise identical to the
        parent-side path.  Accepts anything
        :func:`~repro.neighbors.resolve_backend` does; a long-lived
        :class:`~repro.neighbors.NeighborBackend` instance built over
        ``database`` is reused without re-indexing, which is how
        :class:`~repro.experiments.harness.PipelinedRuns` amortises one
        backend across repeated trials.  Backend *names/classes* are also
        forwarded to the default 1-cluster aggregator.  Ignored (with the
        historical serial path) when the analysis is not plan-capable.
    backend_options:
        Construction options forwarded to :func:`resolve_backend` (rejected
        for instances).
    rng, ledger:
        As elsewhere.

    Returns
    -------
    StablePointResult
    """
    database = np.asarray(database)
    n = database.shape[0]
    block_size = check_integer(block_size, "block_size", minimum=1)
    alpha = check_probability(alpha, "alpha")
    beta = check_probability(beta, "beta")
    if not (0 < subsample_fraction <= 1):
        raise ValueError("subsample_fraction must lie in (0, 1]")

    sample_rng, aggregate_rng = spawn_generators(rng, 2)
    generator = as_generator(sample_rng)

    subsample_size = max(block_size, int(math.floor(subsample_fraction * n)))
    subsample_size = min(subsample_size, n)
    num_blocks = subsample_size // block_size
    if num_blocks < 1:
        raise ValueError(
            f"database of size {n} with subsample fraction {subsample_fraction} "
            f"cannot form even one block of size {block_size}"
        )
    indices = generator.integers(0, n, size=num_blocks * block_size)

    use_plans = (backend is not None and plan_capable(analysis)
                 and database.ndim == 2)
    engine = None
    owns_engine = False
    if use_plans:
        engine = resolve_backend(database, backend, backend_options)
        owns_engine = not isinstance(backend, NeighborBackend)
    elif backend_options is not None and backend is None:
        raise ValueError("backend_options requires a backend")

    try:
        if use_plans:
            # Each block is one independent plan; submitting them all before
            # resolving any keeps a sharded/distributed backend's workers
            # saturated.  Results are collected in block order, and every
            # plan's merge is shard-order deterministic, so the values — and
            # the aggregation below — match the serial path bitwise.
            view = engine.view()
            futures = []
            for block_index in range(num_blocks):
                rows = indices[block_index * block_size:
                               (block_index + 1) * block_size]
                plan = QueryPlan()
                token = analysis.compile(plan, view, rows)
                futures.append((engine.submit(plan), token))
            outputs = [
                np.atleast_1d(np.asarray(
                    analysis.resolve(future.result(), token, block_size),
                    dtype=float,
                ))
                for future, token in futures
            ]
        else:
            subsample = database[indices]
            outputs = []
            for block_index in range(num_blocks):
                block = subsample[block_index * block_size:
                                  (block_index + 1) * block_size]
                value = np.atleast_1d(np.asarray(analysis(block), dtype=float))
                outputs.append(value)
    finally:
        if owns_engine and engine is not None:
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    aggregate_values = np.vstack(outputs)

    target = max(1, int(math.floor(alpha * num_blocks / 2.0)))
    if aggregator is None:
        # Backend names/classes also accelerate the aggregation step (the
        # solver resolves its own backend over Y); instances are bound to the
        # raw database and cannot transfer.
        aggregator_backend = (backend if backend is not None
                              and not isinstance(backend, NeighborBackend)
                              else None)
        aggregator = one_cluster_aggregator(config=config,
                                            backend=aggregator_backend)
    point, cluster_result = aggregator(aggregate_values, target, params, beta,
                                       aggregate_rng, ledger)

    # Sub-sampling amplification (Lemma 6.4) applies when the sub-sample is at
    # most half the database and the aggregation epsilon is at most 1.
    sampled_rows = num_blocks * block_size
    if params.epsilon <= 1.0 and n >= 2 * sampled_rows:
        amplified = subsample_amplification(params, sampled_rows, n)
    else:
        amplified = params

    return StablePointResult(
        point=point,
        num_blocks=num_blocks,
        block_size=block_size,
        target=target,
        amplified_params=amplified,
        aggregate_values=aggregate_values if collect_diagnostics else None,
        cluster_result=cluster_result,
    )


__all__ = [
    "StablePointResult",
    "plan_capable",
    "sample_and_aggregate",
    "sa_minimum_database_size",
]
