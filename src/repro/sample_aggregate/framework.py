"""Algorithm SA: sample and aggregate with a 1-cluster aggregator.

Paper Section 6: given a non-private analysis ``f`` mapping databases to
``X^d`` that is *stable* on the input database ``S`` — evaluating ``f`` on a
random sub-sample of size ``m`` lands within distance ``r`` of some point
``c`` with probability ``alpha`` (Definition 6.1) — Algorithm SA privately
identifies a point close to ``c``:

1. Sub-sample ``n/9`` rows i.i.d. from ``S`` and split them into
   ``k = n/(9m)`` blocks of size ``m``.
2. Evaluate ``f`` on every block, obtaining ``Y = {y_1, ..., y_k}``.
3. Run the 1-cluster algorithm on ``Y`` with target ``t = alpha k / 2`` and
   output the resulting centre.

Privacy follows because a neighbouring change of ``S`` changes at most one
block, hence at most one ``y_i``, and the aggregation step is DP; the i.i.d.
sub-sampling additionally amplifies the guarantee (Lemma 6.4).  Utility
(Theorem 6.3 / Lemma 6.7) combines a Chernoff bound, the 1-cluster guarantee
and the generalisation property of differential privacy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.accounting.composition import subsample_amplification
from repro.accounting.ledger import PrivacyLedger
from repro.accounting.params import PrivacyParams
from repro.core.config import OneClusterConfig
from repro.core.types import OneClusterResult
from repro.sample_aggregate.aggregators import Aggregator, one_cluster_aggregator
from repro.utils.rng import RngLike, as_generator, spawn_generators
from repro.utils.validation import check_integer, check_probability


@dataclass(frozen=True)
class StablePointResult:
    """Outcome of a sample-and-aggregate run.

    Attributes
    ----------
    point:
        The released stable-point estimate (``None`` if aggregation failed).
    aggregate_values:
        Non-private diagnostic: the ``(k, d)`` sub-sample analysis outputs
        ``Y`` (only populated when ``collect_diagnostics=True``; never release
        these — they are not privatised).
    num_blocks:
        The number of sub-sample blocks ``k``.
    block_size:
        The sub-sample size ``m`` handed to the analysis.
    target:
        The cluster-size target ``t = alpha k / 2`` used by the aggregator.
    amplified_params:
        The overall privacy guarantee after sub-sampling amplification.
    cluster_result:
        The aggregator's underlying result object, when it exposes one.
    """

    point: Optional[np.ndarray]
    num_blocks: int
    block_size: int
    target: int
    amplified_params: PrivacyParams
    aggregate_values: Optional[np.ndarray] = None
    cluster_result: Optional[OneClusterResult] = None

    @property
    def found(self) -> bool:
        """Whether a point was released."""
        return self.point is not None


def sa_minimum_database_size(block_size: int, alpha: float, beta: float,
                             t_min: float) -> float:
    """The ``n`` requirement of Lemma 6.7:
    ``n >= m * O(t_min / alpha + log(12/beta) / alpha^2)``."""
    check_probability(alpha, "alpha")
    check_probability(beta, "beta")
    return block_size * (18.0 * t_min / alpha + 46646.0 / alpha ** 2 * math.log(12.0 / beta))


def sample_and_aggregate(database, analysis: Callable[[np.ndarray], np.ndarray],
                         block_size: int, params: PrivacyParams,
                         alpha: float = 0.5, beta: float = 0.1,
                         aggregator: Optional[Aggregator] = None,
                         subsample_fraction: float = 1.0 / 9.0,
                         config: Optional[OneClusterConfig] = None,
                         collect_diagnostics: bool = False,
                         rng: RngLike = None,
                         ledger: Optional[PrivacyLedger] = None) -> StablePointResult:
    """Privately estimate a stable point of ``analysis`` on ``database``.

    Parameters
    ----------
    database:
        The raw input database: any sequence or array of rows; rows are passed
        to ``analysis`` in blocks, so their type only needs to be what the
        analysis accepts (the default expects an ``(m, ...)`` ndarray slice).
    analysis:
        The non-private function ``f``; receives a block of ``block_size``
        rows and must return a point in ``R^d`` (a 1-d array or scalar).
    block_size:
        The stability parameter ``m``.
    params:
        The privacy budget of the *aggregation* step.  The returned
        :class:`StablePointResult` also reports the amplified overall
        guarantee obtained from sub-sampling (Lemma 6.4) when the fraction is
        small enough; the aggregation-step guarantee always holds.
    alpha:
        Stability probability: the caller asserts ``f`` is
        ``(m, r, alpha)``-stable for some radius ``r``.
    beta:
        Failure probability.
    aggregator:
        The private aggregation function applied to the sub-sample outputs;
        defaults to the paper's 1-cluster aggregator.
    subsample_fraction:
        The fraction of ``database`` sub-sampled before blocking (the paper
        uses 1/9).
    config:
        1-cluster configuration forwarded to the default aggregator.
    collect_diagnostics:
        When True, the (non-private) sub-sample outputs ``Y`` are attached to
        the result for inspection in experiments.
    rng, ledger:
        As elsewhere.

    Returns
    -------
    StablePointResult
    """
    database = np.asarray(database)
    n = database.shape[0]
    block_size = check_integer(block_size, "block_size", minimum=1)
    alpha = check_probability(alpha, "alpha")
    beta = check_probability(beta, "beta")
    if not (0 < subsample_fraction <= 1):
        raise ValueError("subsample_fraction must lie in (0, 1]")

    sample_rng, aggregate_rng = spawn_generators(rng, 2)
    generator = as_generator(sample_rng)

    subsample_size = max(block_size, int(math.floor(subsample_fraction * n)))
    subsample_size = min(subsample_size, n)
    num_blocks = subsample_size // block_size
    if num_blocks < 1:
        raise ValueError(
            f"database of size {n} with subsample fraction {subsample_fraction} "
            f"cannot form even one block of size {block_size}"
        )
    indices = generator.integers(0, n, size=num_blocks * block_size)
    subsample = database[indices]

    outputs = []
    for block_index in range(num_blocks):
        block = subsample[block_index * block_size:(block_index + 1) * block_size]
        value = np.atleast_1d(np.asarray(analysis(block), dtype=float))
        outputs.append(value)
    aggregate_values = np.vstack(outputs)

    target = max(1, int(math.floor(alpha * num_blocks / 2.0)))
    if aggregator is None:
        aggregator = one_cluster_aggregator(config=config)
    point, cluster_result = aggregator(aggregate_values, target, params, beta,
                                       aggregate_rng, ledger)

    # Sub-sampling amplification (Lemma 6.4) applies when the sub-sample is at
    # most half the database and the aggregation epsilon is at most 1.
    sampled_rows = num_blocks * block_size
    if params.epsilon <= 1.0 and n >= 2 * sampled_rows:
        amplified = subsample_amplification(params, sampled_rows, n)
    else:
        amplified = params

    return StablePointResult(
        point=point,
        num_blocks=num_blocks,
        block_size=block_size,
        target=target,
        amplified_params=amplified,
        aggregate_values=aggregate_values if collect_diagnostics else None,
        cluster_result=cluster_result,
    )


__all__ = ["StablePointResult", "sample_and_aggregate", "sa_minimum_database_size"]
