"""Stable-point definitions and empirical stability estimation.

Paper Definition 6.1: a point ``c`` is an ``(m, r, alpha)``-stable point of
``f`` on ``S`` if evaluating ``f`` on a fresh size-``m`` i.i.d. sub-sample of
``S`` lands within distance ``r`` of ``c`` with probability at least
``alpha``.  Experiments need to *measure* how stable a returned point actually
is; :func:`empirical_stability` does that by Monte-Carlo evaluation of ``f``
on fresh sub-samples (a purely diagnostic, non-private computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer, check_probability


@dataclass(frozen=True)
class StabilityEstimate:
    """Monte-Carlo estimate of the stability of a candidate point.

    Attributes
    ----------
    probability:
        The estimated probability that ``f`` on a fresh sub-sample lands
        within ``radius`` of the candidate point.
    radius:
        The radius used.
    distances:
        The raw distances observed (one per Monte-Carlo repetition).
    """

    probability: float
    radius: float
    distances: np.ndarray

    def radius_for_probability(self, alpha: float) -> float:
        """The smallest radius for which the candidate would be
        ``(m, r, alpha)``-stable according to the observed sample."""
        check_probability(alpha, "alpha")
        quantile = float(np.quantile(self.distances, alpha))
        return quantile


def empirical_stability(database, analysis: Callable[[np.ndarray], np.ndarray],
                        candidate, block_size: int, radius: float,
                        repetitions: int = 100, rng: RngLike = None) -> StabilityEstimate:
    """Estimate ``Pr[||f(S') - candidate|| <= radius]`` by Monte-Carlo.

    Parameters
    ----------
    database:
        The full database ``S``.
    analysis:
        The non-private function ``f``.
    candidate:
        The point whose stability is being assessed.
    block_size:
        The sub-sample size ``m``.
    radius:
        The stability radius ``r``.
    repetitions:
        Number of Monte-Carlo sub-samples.
    rng:
        Seed or generator.
    """
    database = np.asarray(database)
    check_integer(block_size, "block_size", minimum=1)
    check_integer(repetitions, "repetitions", minimum=1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    candidate = np.atleast_1d(np.asarray(candidate, dtype=float))
    generator = as_generator(rng)
    n = database.shape[0]
    distances = np.empty(repetitions)
    for rep in range(repetitions):
        indices = generator.integers(0, n, size=block_size)
        value = np.atleast_1d(np.asarray(analysis(database[indices]), dtype=float))
        distances[rep] = float(np.linalg.norm(value - candidate))
    probability = float(np.mean(distances <= radius))
    return StabilityEstimate(probability=probability, radius=float(radius),
                             distances=distances)


__all__ = ["StabilityEstimate", "empirical_stability"]
