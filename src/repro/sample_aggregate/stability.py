"""Stable-point definitions and empirical stability estimation.

Paper Definition 6.1: a point ``c`` is an ``(m, r, alpha)``-stable point of
``f`` on ``S`` if evaluating ``f`` on a fresh size-``m`` i.i.d. sub-sample of
``S`` lands within distance ``r`` of ``c`` with probability at least
``alpha``.  Experiments need to *measure* how stable a returned point actually
is; :func:`empirical_stability` does that by Monte-Carlo evaluation of ``f``
on fresh sub-samples (a purely diagnostic, non-private computation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.neighbors import BackendLike, NeighborBackend, QueryPlan, resolve_backend
from repro.utils.rng import RngLike, as_generator
from repro.utils.validation import check_integer, check_probability


@dataclass(frozen=True)
class StabilityEstimate:
    """Monte-Carlo estimate of the stability of a candidate point.

    Attributes
    ----------
    probability:
        The estimated probability that ``f`` on a fresh sub-sample lands
        within ``radius`` of the candidate point.
    radius:
        The radius used.
    distances:
        The raw distances observed (one per Monte-Carlo repetition).
    """

    probability: float
    radius: float
    distances: np.ndarray

    def radius_for_probability(self, alpha: float) -> float:
        """The smallest radius for which the candidate would be
        ``(m, r, alpha)``-stable according to the observed sample."""
        check_probability(alpha, "alpha")
        quantile = float(np.quantile(self.distances, alpha))
        return quantile


def empirical_stability(database, analysis: Callable[[np.ndarray], np.ndarray],
                        candidate, block_size: int, radius: float,
                        repetitions: int = 100, backend: BackendLike = None,
                        backend_options: Optional[dict] = None,
                        rng: RngLike = None) -> StabilityEstimate:
    """Estimate ``Pr[||f(S') - candidate|| <= radius]`` by Monte-Carlo.

    Parameters
    ----------
    database:
        The full database ``S``.
    analysis:
        The non-private function ``f``.
    candidate:
        The point whose stability is being assessed.
    block_size:
        The sub-sample size ``m``.
    radius:
        The stability radius ``r``.
    repetitions:
        Number of Monte-Carlo sub-samples.
    backend, backend_options:
        As in :func:`~repro.sample_aggregate.framework.sample_and_aggregate`:
        with a plan-capable analysis (``compile``/``resolve``) every
        repetition's sub-sample evaluation is one asynchronous
        :class:`QueryPlan`, all submitted before any is resolved; the
        distances are bitwise identical to the serial path.
    rng:
        Seed or generator.
    """
    from repro.sample_aggregate.framework import plan_capable

    database = np.asarray(database)
    check_integer(block_size, "block_size", minimum=1)
    check_integer(repetitions, "repetitions", minimum=1)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    candidate = np.atleast_1d(np.asarray(candidate, dtype=float))
    generator = as_generator(rng)
    n = database.shape[0]
    # Draw every repetition's sub-sample up-front, in the historical per-rep
    # call order, so the random stream — and hence the estimate — does not
    # depend on which evaluation path runs.
    index_sets = [generator.integers(0, n, size=block_size)
                  for _ in range(repetitions)]

    use_plans = (backend is not None and plan_capable(analysis)
                 and database.ndim == 2)
    distances = np.empty(repetitions)
    if use_plans:
        engine = resolve_backend(database, backend, backend_options)
        owns_engine = not isinstance(backend, NeighborBackend)
        try:
            view = engine.view()
            futures = []
            for indices in index_sets:
                plan = QueryPlan()
                token = analysis.compile(plan, view, indices)
                futures.append((engine.submit(plan), token))
            for rep, (future, token) in enumerate(futures):
                value = np.atleast_1d(np.asarray(
                    analysis.resolve(future.result(), token, block_size),
                    dtype=float,
                ))
                distances[rep] = float(np.linalg.norm(value - candidate))
        finally:
            if owns_engine:
                close = getattr(engine, "close", None)
                if close is not None:
                    close()
    else:
        if backend_options is not None and backend is None:
            raise ValueError("backend_options requires a backend")
        for rep, indices in enumerate(index_sets):
            value = np.atleast_1d(np.asarray(analysis(database[indices]),
                                             dtype=float))
            distances[rep] = float(np.linalg.norm(value - candidate))
    probability = float(np.mean(distances <= radius))
    return StabilityEstimate(probability=probability, radius=float(radius),
                             distances=distances)


__all__ = ["StabilityEstimate", "empirical_stability"]
